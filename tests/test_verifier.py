"""Tests for the symbolic equivalence verifier on known (non-)identities."""

from fractions import Fraction

import pytest

from repro.ir.circuit import Circuit
from repro.ir.params import Angle
from repro.verifier import EquivalenceVerifier
from repro.verifier.trig import AtomTrigBuilder, SymbolicContext, UnrepresentableAngleError


@pytest.fixture(scope="module")
def verifier0():
    return EquivalenceVerifier(num_params=0)


@pytest.fixture(scope="module")
def verifier2():
    return EquivalenceVerifier(num_params=2)


class TestFixedGateIdentities:
    def test_hh_is_identity(self, verifier0):
        assert verifier0.verify(Circuit(1).h(0).h(0), Circuit(1)).equivalent

    def test_ss_is_z(self, verifier0):
        assert verifier0.verify(Circuit(1).s(0).s(0), Circuit(1).z(0)).equivalent

    def test_tt_is_s(self, verifier0):
        assert verifier0.verify(Circuit(1).t(0).t(0), Circuit(1).s(0)).equivalent

    def test_hxh_is_z(self, verifier0):
        assert verifier0.verify(
            Circuit(1).h(0).x(0).h(0), Circuit(1).z(0)
        ).equivalent

    def test_hzh_is_x(self, verifier0):
        assert verifier0.verify(
            Circuit(1).h(0).z(0).h(0), Circuit(1).x(0)
        ).equivalent

    def test_cnot_flip_with_hadamards(self, verifier0):
        flipped = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        assert verifier0.verify(flipped, Circuit(2).cx(1, 0)).equivalent

    def test_cz_symmetric(self, verifier0):
        assert verifier0.verify(Circuit(2).cz(0, 1), Circuit(2).cz(1, 0)).equivalent

    def test_cz_from_cnot_and_hadamards(self, verifier0):
        built = Circuit(2).h(1).cx(0, 1).h(1)
        assert verifier0.verify(built, Circuit(2).cz(0, 1)).equivalent

    def test_swap_from_three_cnots(self, verifier0):
        built = Circuit(2).cx(0, 1).cx(1, 0).cx(0, 1)
        assert verifier0.verify(built, Circuit(2).swap(0, 1)).equivalent

    def test_global_phase_identity(self, verifier0):
        # S S Z = e^{i pi} I: equivalent up to phase.
        result = verifier0.verify(Circuit(1).s(0).s(0).z(0), Circuit(1))
        assert result.equivalent
        assert result.phase is not None

    def test_x_is_not_z(self, verifier0):
        assert not verifier0.verify(Circuit(1).x(0), Circuit(1).z(0)).equivalent

    def test_xx_on_different_qubits_not_identity(self, verifier0):
        assert not verifier0.verify(
            Circuit(2).x(0).x(1), Circuit(2)
        ).equivalent

    def test_different_qubit_counts(self, verifier0):
        assert not verifier0.verify(Circuit(1), Circuit(2)).equivalent


class TestParametricIdentities:
    def test_rz_merging(self, verifier2):
        split = Circuit(1, num_params=2).rz(0, Angle.param(0)).rz(0, Angle.param(1))
        merged = Circuit(1, num_params=2).rz(0, Angle.param(0) + Angle.param(1))
        assert verifier2.verify(split, merged).equivalent

    def test_rz_commutes_with_cnot_control(self, verifier2):
        left = Circuit(2, num_params=1).rz(0, Angle.param(0)).cx(0, 1)
        right = Circuit(2, num_params=1).cx(0, 1).rz(0, Angle.param(0))
        assert verifier2.verify(left, right).equivalent

    def test_rz_does_not_commute_with_cnot_target(self, verifier2):
        left = Circuit(2, num_params=1).rz(1, Angle.param(0)).cx(0, 1)
        right = Circuit(2, num_params=1).cx(0, 1).rz(1, Angle.param(0))
        assert not verifier2.verify(left, right).equivalent

    def test_figure_2c_rz_fusion_across_cz_and_x(self):
        """The transformation of Figure 2c: Rz(phi) CZ X Rz(theta) ... fuses
        into Rz(theta - phi) after commuting through X."""
        verifier = EquivalenceVerifier(num_params=2)
        left = (
            Circuit(2, num_params=2)
            .rz(1, Angle.param(0))  # Rz(phi) on q1
            .cz(0, 1)
            .x(1)
            .rz(1, Angle.param(1))  # Rz(theta) on q1
        )
        right = (
            Circuit(2, num_params=2)
            .cz(0, 1)
            .x(1)
            .rz(1, Angle.param(1) - Angle.param(0))  # Rz(theta - phi)
        )
        assert verifier.verify(left, right).equivalent

    def test_u1_vs_rz_requires_parameter_dependent_phase(self):
        verifier = EquivalenceVerifier(num_params=1, search_linear_phase=True)
        u1 = Circuit(1, num_params=1).u1(0, Angle.param(0, 2))
        rz = Circuit(1, num_params=1).rz(0, Angle.param(0, 2))
        result = verifier.verify(u1, rz)
        assert result.equivalent
        assert result.phase is not None and not result.phase.is_constant()

    def test_u3_decomposition_with_parameter_dependent_phase(self):
        # U3(2a, 2b, 2c) = e^{i(b + c)} . Rz(2b) . Ry(2a) . Rz(2c)
        verifier = EquivalenceVerifier(num_params=3, search_linear_phase=True)
        u3 = Circuit(1, num_params=3).u3(
            0, Angle.param(0, 2), Angle.param(1, 2), Angle.param(2, 2)
        )
        decomposed = (
            Circuit(1, num_params=3)
            .rz(0, Angle.param(2, 2))
            .ry(0, Angle.param(0, 2))
            .rz(0, Angle.param(1, 2))
        )
        result = verifier.verify(u3, decomposed)
        assert result.equivalent
        assert result.phase is not None and result.phase.coefficients == (0, 1, 1)

    def test_rz_double_angle_not_single(self, verifier2):
        a = Circuit(1, num_params=2).rz(0, Angle.param(0, 2))
        b = Circuit(1, num_params=2).rz(0, Angle.param(0))
        assert not verifier2.verify(a, b).equivalent

    def test_stats_are_recorded(self):
        verifier = EquivalenceVerifier(num_params=0)
        verifier.verify(Circuit(1).h(0).h(0), Circuit(1))
        verifier.verify(Circuit(1).x(0), Circuit(1).z(0))
        assert verifier.stats.checks == 2
        assert verifier.stats.time_seconds > 0
        assert verifier.stats.symbolic_proofs >= 1
        assert verifier.stats.as_dict()["checks"] == 2


class TestNumericFallback:
    def test_concrete_pi_over_4_rotations_use_fallback(self):
        # rz(pi/4) twice vs rz(pi/2): exact path needs cos(pi/8) which is not
        # in Q[sqrt(2)], so the verifier falls back to the numeric check.
        verifier = EquivalenceVerifier(num_params=0)
        a = Circuit(1).rz(0, Angle.pi(Fraction(1, 4))).rz(0, Angle.pi(Fraction(1, 4)))
        b = Circuit(1).rz(0, Angle.pi(Fraction(1, 2)))
        result = verifier.verify(a, b)
        assert result.equivalent
        assert result.method == "numeric"

    def test_rz_vs_t_differ_by_unrepresentable_phase(self):
        # rz(pi/4) = e^{-i pi/8} T: the phase pi/8 is outside the candidate
        # space {k pi/4}, so the pair is (correctly) not proven equivalent.
        verifier = EquivalenceVerifier(num_params=0)
        a = Circuit(1).rz(0, Angle.pi(Fraction(1, 4)))
        b = Circuit(1).t(0)
        assert not verifier.verify(a, b).equivalent

    def test_fallback_can_be_disabled(self):
        verifier = EquivalenceVerifier(num_params=0, allow_numeric_fallback=False)
        a = Circuit(1).rz(0, Angle.pi(Fraction(1, 4))).rz(0, Angle.pi(Fraction(1, 4)))
        b = Circuit(1).rz(0, Angle.pi(Fraction(1, 2)))
        with pytest.raises(UnrepresentableAngleError):
            verifier.verify(a, b)


class TestSymbolicContext:
    def test_denominator_inference(self):
        circuit = Circuit(1, num_params=2).rz(0, Angle.param(0, Fraction(1, 2)))
        context = SymbolicContext.for_circuits([circuit], 2)
        assert context.denominators[0] == 4  # 1/2 coefficient, doubled for halving
        assert context.denominators[1] == 2

    def test_unrepresentable_coefficient(self):
        context = SymbolicContext(1, [2])
        builder = AtomTrigBuilder(context)
        with pytest.raises(UnrepresentableAngleError):
            builder.exp_i(Angle.param(0, Fraction(1, 3)))

    def test_too_many_params_rejected(self):
        circuit = Circuit(1, num_params=1).rz(0, Angle.param(5))
        with pytest.raises(ValueError):
            SymbolicContext.for_circuits([circuit], 1)

    def test_atom_values(self):
        context = SymbolicContext(2, [2, 4])
        values = context.atom_values([1.0, 2.0])
        assert values == {0: 0.5, 1: 0.5}
