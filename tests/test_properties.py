"""Cross-module property-based tests (hypothesis) on randomly built circuits.

These are the system-level invariants every stage must preserve:

* the simulator always produces unitaries;
* canonical keys are invariant under independent-gate reordering;
* preprocessing, baselines and the optimizer preserve semantics up to phase;
* the verifier agrees with the numeric simulator on random circuit pairs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import run_baseline
from repro.ir import Circuit
from repro.preprocess import clifford_t_to_nam, merge_rotations
from repro.preprocess.transpile import cancel_adjacent_inverses
from repro.semantics.simulator import circuit_unitary, circuits_equivalent_numeric
from repro.verifier import EquivalenceVerifier

SINGLE_QUBIT_GATES = ["h", "x", "z", "s", "sdg", "t", "tdg"]


@st.composite
def clifford_t_circuits(draw, max_qubits=3, max_gates=12):
    num_qubits = draw(st.integers(2, max_qubits))
    num_gates = draw(st.integers(0, max_gates))
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        if draw(st.booleans()):
            gate = draw(st.sampled_from(SINGLE_QUBIT_GATES))
            circuit.append(gate, draw(st.integers(0, num_qubits - 1)))
        else:
            control = draw(st.integers(0, num_qubits - 1))
            target = draw(st.integers(0, num_qubits - 1))
            if control == target:
                target = (target + 1) % num_qubits
            circuit.cx(control, target)
    return circuit


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(clifford_t_circuits())
    def test_circuit_unitaries_are_unitary(self, circuit):
        unitary = circuit_unitary(circuit)
        dim = 1 << circuit.num_qubits
        assert np.allclose(unitary @ unitary.conj().T, np.eye(dim), atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(clifford_t_circuits(max_gates=8), st.randoms())
    def test_canonical_key_invariant_under_commuting_swap(self, circuit, rng):
        """Swapping two adjacent instructions on disjoint qubits keeps the
        canonical key (and the unitary) unchanged."""
        instructions = list(circuit.instructions)
        swappable = [
            i
            for i in range(len(instructions) - 1)
            if not (set(instructions[i].qubits) & set(instructions[i + 1].qubits))
        ]
        if not swappable:
            return
        index = rng.choice(swappable)
        swapped = list(instructions)
        swapped[index], swapped[index + 1] = swapped[index + 1], swapped[index]
        other = Circuit(circuit.num_qubits, swapped)
        assert other.canonical_key() == circuit.canonical_key()
        assert np.allclose(circuit_unitary(circuit), circuit_unitary(other))


class TestPassProperties:
    @settings(max_examples=20, deadline=None)
    @given(clifford_t_circuits())
    def test_rotation_merging_preserves_semantics(self, circuit):
        nam = clifford_t_to_nam(circuit)
        merged = merge_rotations(nam)
        assert merged.gate_count <= nam.gate_count
        assert circuits_equivalent_numeric(nam, merged)

    @settings(max_examples=20, deadline=None)
    @given(clifford_t_circuits())
    def test_adjacent_cancellation_preserves_semantics(self, circuit):
        reduced = cancel_adjacent_inverses(circuit)
        assert reduced.gate_count <= circuit.gate_count
        assert circuits_equivalent_numeric(circuit, reduced)

    @settings(max_examples=10, deadline=None)
    @given(clifford_t_circuits(max_gates=10))
    def test_nam_baseline_preserves_semantics(self, circuit):
        nam = clifford_t_to_nam(circuit)
        optimized = run_baseline("nam", nam, "nam")
        assert optimized.gate_count <= nam.gate_count
        assert circuits_equivalent_numeric(nam, optimized)


class TestVerifierAgreesWithSimulator:
    @settings(max_examples=10, deadline=None)
    @given(clifford_t_circuits(max_qubits=2, max_gates=5), clifford_t_circuits(max_qubits=2, max_gates=5))
    def test_verifier_never_disagrees_with_numerics(self, left, right):
        """Soundness spot-check: if the exact verifier says 'equivalent', the
        numeric simulator must agree (on fixed random inputs)."""
        if left.num_qubits != right.num_qubits:
            return
        verifier = EquivalenceVerifier(num_params=0)
        verdict = verifier.verify(left, right)
        if verdict.equivalent:
            assert circuits_equivalent_numeric(left, right)

    @settings(max_examples=10, deadline=None)
    @given(clifford_t_circuits(max_qubits=2, max_gates=6))
    def test_every_circuit_is_equivalent_to_itself_reversed_inverse(self, circuit):
        """C followed by its dagger is the identity — the verifier must prove
        it (all gates here have registry inverses)."""
        inverse = Circuit(circuit.num_qubits)
        inverse_names = {"t": "tdg", "tdg": "t", "s": "sdg", "sdg": "s"}
        for inst in reversed(circuit.instructions):
            name = inverse_names.get(inst.gate.name, inst.gate.name)
            inverse.append(name, inst.qubits)
        combined = Circuit(circuit.num_qubits, list(circuit.instructions) + list(inverse.instructions))
        verifier = EquivalenceVerifier(num_params=0)
        assert verifier.verify(combined, Circuit(circuit.num_qubits)).equivalent
