"""Property tests for the cache's corruption tolerance (hypothesis-driven).

The robustness contract of :meth:`repro.generator.cache.ECCCache.load` is
absolute: *no* on-disk state may make a cache read raise.  Hypothesis
mutates a pristine generator-result blob — truncation, bit flips, byte
deletion/insertion, or wholesale garbage — and every mutation must produce
either the original result or a clean miss (warning + regeneration), with
the regenerated ECC JSON byte-identical to the pristine one's.

The deterministic companions cover the injected-fault flavors directly:
``torn_read`` (a transient partial read racing a concurrent rewrite) heals
on the immediate re-read and counts ``cache.reread``; ``corrupt_blob``
(persistent bit-rot) fails both attempts, counts ``cache.corrupt``, and
forces a byte-identical regeneration.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import FaultPlan
from repro.generator import RepGen
from repro.generator.cache import ECCCache
from repro.ir.gatesets import NAM
from repro.perf import PerfRecorder


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.set_fault_plan(None)
    yield
    faults.set_fault_plan(None)


def _repgen():
    return RepGen(NAM, num_qubits=2, num_params=2)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One stored n=1 generator result: (cache, key, blob path, bytes, json)."""
    cache = ECCCache(tmp_path_factory.mktemp("fuzz") / "cache", enabled=True)
    generator = _repgen()
    result = generator.generate(1)
    key = generator._cache_key(1)
    path = cache.store_generator_result(key, result)
    assert path is not None
    return {
        "cache": cache,
        "key": key,
        "path": path,
        "blob": path.read_bytes(),
        "ecc_json": result.ecc_set.to_json(),
    }


# Mutations are generated against blob *positions* scaled at run time, so
# the strategies stay independent of the pristine blob's exact size.
_mutations = st.one_of(
    st.tuples(st.just("truncate"), st.floats(0.0, 1.0)),
    st.tuples(st.just("flip"), st.floats(0.0, 1.0), st.integers(1, 255)),
    st.tuples(st.just("delete"), st.floats(0.0, 1.0)),
    st.tuples(st.just("insert"), st.floats(0.0, 1.0), st.binary(min_size=1, max_size=16)),
    st.tuples(st.just("garbage"), st.binary(max_size=64)),
)


def _mutate(blob: bytes, mutation) -> bytes:
    kind = mutation[0]
    if kind == "garbage":
        return mutation[1]  # the whole file is replaced
    position = int(mutation[1] * (len(blob) - 1)) if len(blob) > 1 else 0
    if kind == "truncate":
        return blob[:position]
    if kind == "flip":
        return (
            blob[:position]
            + bytes([blob[position] ^ mutation[2]])
            + blob[position + 1 :]
        )
    if kind == "delete":
        return blob[:position] + blob[position + 1 :]
    assert kind == "insert"
    return blob[:position] + mutation[2] + blob[position:]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(mutation=_mutations)
def test_mutated_blobs_never_raise_and_regeneration_is_byte_identical(
    pristine, mutation
):
    cache, key, path = pristine["cache"], pristine["key"], pristine["path"]
    path.write_bytes(_mutate(pristine["blob"], mutation))
    try:
        with warnings.catch_warnings():
            # Misses warn; the property under test is "never raises".
            warnings.simplefilter("ignore", RuntimeWarning)
            loaded = cache.load_generator_result(key)
            if loaded is not None:
                # Only a mutation that left the envelope checksum-valid
                # (e.g. a full-length truncation) may serve a hit — and
                # then it must be the original, not a scrambled variant.
                assert loaded.ecc_set.to_json() == pristine["ecc_json"]
            else:
                # The caller's recovery path: regenerate over the bad blob.
                regenerated = _repgen().generate(1, cache=cache)
                assert regenerated.ecc_set.to_json() == pristine["ecc_json"]
    finally:
        path.write_bytes(pristine["blob"])


class TestInjectedReadFaults:
    def test_torn_read_heals_on_reread(self, pristine):
        perf = PerfRecorder()
        cache = ECCCache(pristine["cache"].directory, enabled=True, perf=perf)
        faults.set_fault_plan(FaultPlan.from_string("torn_read:cache"))
        loaded = cache.load_generator_result(pristine["key"])
        assert loaded is not None
        assert loaded.ecc_set.to_json() == pristine["ecc_json"]
        snapshot = perf.snapshot()
        assert snapshot.get("cache.reread") == 1
        assert "cache.corrupt" not in snapshot

    def test_corrupt_blob_forces_byte_identical_regeneration(
        self, pristine, tmp_path
    ):
        # A private copy: the injected corruption persists on disk.
        perf = PerfRecorder()
        cache = ECCCache(tmp_path / "cache", enabled=True, perf=perf)
        copy = cache.directory / pristine["path"].name
        copy.parent.mkdir(parents=True)
        copy.write_bytes(pristine["blob"])
        faults.set_fault_plan(FaultPlan.from_string("corrupt_blob:cache"))
        with pytest.warns(RuntimeWarning, match="unusable cache blob"):
            assert cache.load_generator_result(pristine["key"]) is None
        snapshot = perf.snapshot()
        assert snapshot.get("cache.corrupt") == 1
        assert snapshot.get("cache.reread") == 1  # the first attempt retried
        faults.set_fault_plan(None)
        # Regeneration reads the still-rotten blob once more (warns), then
        # overwrites it.
        with pytest.warns(RuntimeWarning, match="unusable cache blob"):
            regenerated = _repgen().generate(1, cache=cache)
        assert regenerated.ecc_set.to_json() == pristine["ecc_json"]
        # The regeneration overwrote the rotten blob: the next load hits.
        assert cache.load_generator_result(pristine["key"]) is not None

    def test_concurrent_rewrite_race_stays_consistent(self, pristine, tmp_path):
        # A reader racing a writer of the same deterministic blob: one torn
        # attempt, then the (atomically replaced) blob reads clean.  This is
        # exactly what two simultaneous CI jobs sharing a cache dir do.
        cache = ECCCache(tmp_path / "cache", enabled=True)
        copy = cache.directory / pristine["path"].name
        copy.parent.mkdir(parents=True)
        copy.write_bytes(pristine["blob"])
        faults.set_fault_plan(FaultPlan.from_string("torn_read:cache:1"))
        loaded = cache.load_generator_result(pristine["key"])
        assert loaded is not None
        assert loaded.ecc_set.to_json() == pristine["ecc_json"]
