"""Tests for the numeric simulator."""

import math

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.params import Angle
from repro.semantics.simulator import (
    apply_circuit,
    circuit_unitary,
    circuits_equivalent_numeric,
    expand_to_qubits,
    instruction_unitary,
    random_state,
    unitaries_equal_up_to_phase,
)


class TestCircuitUnitary:
    def test_identity_for_empty_circuit(self):
        assert np.allclose(circuit_unitary(Circuit(2)), np.eye(4))

    def test_single_hadamard(self):
        unitary = circuit_unitary(Circuit(1).h(0))
        expected = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
        assert np.allclose(unitary, expected)

    def test_qubit_ordering_convention(self):
        # X on qubit 0 (most significant) maps |00> to |10> (index 2).
        unitary = circuit_unitary(Circuit(2).x(0))
        state = unitary @ np.eye(4)[0]
        assert np.isclose(abs(state[2]), 1.0)

    def test_cx_entangles(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        state = circuit_unitary(circuit) @ np.eye(4)[0]
        assert np.isclose(abs(state[0]) ** 2, 0.5, atol=1e-9)
        assert np.isclose(abs(state[3]) ** 2, 0.5, atol=1e-9)

    def test_matches_slow_embedding_path(self):
        circuit = Circuit(3).h(0).ccx(0, 1, 2).cx(2, 0).t(1).swap(0, 2)
        fast = circuit_unitary(circuit)
        slow = np.eye(8, dtype=complex)
        for inst in circuit.instructions:
            slow = expand_to_qubits(instruction_unitary(inst), inst.qubits, 3) @ slow
        assert np.allclose(fast, slow)

    def test_unitarity_of_random_circuit(self, random_circuit_factory):
        circuit = random_circuit_factory(3, 12, seed=5, include_ccx=True)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-9)

    def test_parametric_evaluation(self):
        circuit = Circuit(1, num_params=1).rz(0, Angle.param(0))
        unitary = circuit_unitary(circuit, [1.2])
        expected = np.diag([np.exp(-0.6j), np.exp(0.6j)])
        assert np.allclose(unitary, expected)


class TestApplyCircuit:
    def test_matches_unitary_action(self, random_circuit_factory):
        circuit = random_circuit_factory(3, 15, seed=11, include_ccx=True)
        rng = np.random.default_rng(3)
        state = random_state(3, rng)
        direct = apply_circuit(circuit, state)
        via_unitary = circuit_unitary(circuit) @ state
        assert np.allclose(direct, via_unitary)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            apply_circuit(Circuit(2), np.zeros(2))

    def test_random_state_is_normalized(self):
        state = random_state(4, np.random.default_rng(0))
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestEquivalenceChecks:
    def test_equal_up_to_phase(self):
        unitary = circuit_unitary(Circuit(2).h(0).cx(0, 1))
        assert unitaries_equal_up_to_phase(unitary, np.exp(0.7j) * unitary)
        assert not unitaries_equal_up_to_phase(unitary, np.eye(4))

    def test_shape_mismatch(self):
        assert not unitaries_equal_up_to_phase(np.eye(2), np.eye(4))

    def test_circuits_equivalent_numeric_positive(self):
        a = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        b = Circuit(2).cx(1, 0)
        assert circuits_equivalent_numeric(a, b)

    def test_circuits_equivalent_numeric_negative(self):
        assert not circuits_equivalent_numeric(Circuit(1).x(0), Circuit(1).z(0))

    def test_circuits_equivalent_different_qubits(self):
        assert not circuits_equivalent_numeric(Circuit(1), Circuit(2))

    def test_parametric_equivalence(self):
        a = Circuit(1, num_params=2).rz(0, Angle.param(0)).rz(0, Angle.param(1))
        b = Circuit(1, num_params=2).rz(0, Angle.param(0) + Angle.param(1))
        assert circuits_equivalent_numeric(a, b)

    def test_parametric_non_equivalence(self):
        a = Circuit(1, num_params=1).rz(0, Angle.param(0))
        b = Circuit(1, num_params=1).rz(0, Angle.param(0, 2))
        assert not circuits_equivalent_numeric(a, b)
