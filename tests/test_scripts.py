"""Smoke tests for the checked-in CI helper scripts (``scripts/``).

The scripts are plain files, not a package, so they are loaded by path;
each one is exercised in-process exactly the way the workflow invokes it,
so a CI-leg regression (bad flag, wrong exit code, broken table) fails
here first.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    # Register before exec so dataclasses/pickling inside the script (none
    # today) and repeated loads behave; overwritten per test run.
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_ecc_identity():
    return _load_script("check_ecc_identity")


@pytest.fixture(scope="module")
def check_search_identity():
    return _load_script("check_search_identity")


@pytest.fixture(scope="module")
def microbench_delta():
    return _load_script("microbench_delta")


@pytest.fixture(scope="module")
def chaos_run():
    return _load_script("chaos_run")


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    # The identity/chaos scripts install process-global fault plans; no
    # in-process invocation may leak one into the next test.
    from repro import faults

    faults.set_fault_plan(None)
    yield
    faults.set_fault_plan(None)


class TestCheckEccIdentity:
    def test_verify_workers_identity_and_artifact(self, check_ecc_identity, tmp_path):
        artifact = tmp_path / "serial_ecc.json"
        code = check_ecc_identity.main(
            [
                "--n",
                "1",
                "--q",
                "2",
                "--verify-workers",
                "2",
                "--artifact",
                str(artifact),
            ]
        )
        assert code == 0
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert isinstance(payload, dict)

    def test_fingerprint_workers_identity(self, check_ecc_identity):
        assert check_ecc_identity.main(["--n", "1", "--q", "2", "--workers", "2"]) == 0

    def test_serial_only_invocation_is_a_usage_error(self, check_ecc_identity, capsys):
        assert check_ecc_identity.main(["--n", "1", "--q", "2"]) == 2
        assert "nothing to compare" in capsys.readouterr().err

    def test_identity_holds_under_injected_faults(
        self, check_ecc_identity, monkeypatch, capsys
    ):
        # The chaos CI leg's invocation shape: a fault plan from the
        # environment, --expect-faults guarding against vacuity.
        monkeypatch.setenv("REPRO_FAULTS", "fail_chunk:gen:round2")
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "5")
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "2")
        code = check_ecc_identity.main(
            ["--n", "2", "--q", "2", "--workers", "2", "--expect-faults"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan: fail_chunk:gen:round2" in out
        assert "resilience.faults_injected = 1" in out

    def test_expect_faults_fails_when_nothing_fires(
        self, check_ecc_identity, monkeypatch, capsys
    ):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        code = check_ecc_identity.main(
            ["--n", "1", "--q", "2", "--workers", "2", "--expect-faults"]
        )
        assert code == 3
        assert "VACUOUS" in capsys.readouterr().err


class TestCheckSearchIdentity:
    # The (2, 2) rule set is the smallest at which frontier waves carry
    # enough jobs for the pool to actually dispatch (and faults to fire);
    # the CI search leg runs the same shape at 2 and 4 workers.
    SMALL = ["--n", "2", "--q", "2", "--max-iterations", "12", "--timeout", "60"]

    def test_worker_identity_and_artifact(self, check_search_identity, tmp_path):
        artifact = tmp_path / "serial_best.json"
        code = check_search_identity.main(
            self.SMALL + ["--workers", "2", "--artifact", str(artifact)]
        )
        assert code == 0
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert "instructions" in payload

    def test_serial_only_invocation_is_a_usage_error(
        self, check_search_identity, capsys
    ):
        assert check_search_identity.main(self.SMALL + ["--workers", "1"]) == 2
        assert "nothing to compare" in capsys.readouterr().err

    def test_identity_holds_under_injected_faults(
        self, check_search_identity, monkeypatch, capsys
    ):
        # The search CI leg's chaos invocation shape: a fault plan at the
        # "search" site, --expect-faults guarding against vacuity.
        monkeypatch.setenv("REPRO_FAULTS", "fail_chunk:search")
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "2")
        code = check_search_identity.main(
            self.SMALL + ["--workers", "2", "--expect-faults"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan (2 workers): fail_chunk:search:1" in out
        assert "resilience.faults_injected = 1" in out

    def test_expect_faults_fails_when_nothing_fires(
        self, check_search_identity, monkeypatch, capsys
    ):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        code = check_search_identity.main(
            self.SMALL + ["--workers", "2", "--expect-faults"]
        )
        assert code == 3
        assert "VACUOUS" in capsys.readouterr().err


class TestChaosRun:
    def test_converges_under_a_seeded_schedule(self, chaos_run, capsys):
        # Seed 7's first schedule injects real faults at this scale (the CI
        # leg runs three; one keeps the in-process smoke affordable).
        code = chaos_run.main(
            [
                "--runs", "1", "--seed", "7", "--n", "2", "--q", "2",
                "--workers", "2", "--verify-workers", "2",
                "--chunk-timeout", "2", "--max-iterations", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged to one ECC hash" in out

    def test_zero_fired_faults_is_vacuous(self, chaos_run, capsys):
        # With no chaos runs at all only the baseline executes: the
        # single-hash check passes but the vacuity guard must trip.
        code = chaos_run.main(
            ["--runs", "0", "--n", "1", "--q", "2", "--max-iterations", "1"]
        )
        assert code == 2
        assert "VACUOUS" in capsys.readouterr().err


class TestMicrobenchDelta:
    CURRENT = {
        "check_only": True,
        "seed_baselines": {"repgen_n3_q3_seconds": 9.0, "search_tof3_seconds": 1.53},
        "repgen_n3_q3": {"seconds": 1.5, "speedup_vs_seed": 6.0, "perf": {"x": 1}},
        "search_tof3": {"seconds": 0.6, "speedup_vs_seed": 2.5, "final_cost": 35},
        "new_entry": {"seconds": 0.1},
    }
    PREVIOUS = {
        "repgen_n3_q3": {"seconds": 1.0, "speedup_vs_seed": 9.0},
        "search_tof3": {"seconds": 0.5, "speedup_vs_seed": 3.0},
        "old_entry": {"seconds": 0.2},
    }

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_collect_metrics_keeps_only_scalar_timings(self, microbench_delta):
        metrics = microbench_delta.collect_metrics(self.CURRENT)
        assert metrics[("repgen_n3_q3", "seconds")] == 1.5
        assert ("repgen_n3_q3", "perf") not in metrics
        assert ("search_tof3", "final_cost") not in metrics
        entries = {entry for entry, _metric in metrics}
        # Bookkeeping stays out of the table: the constant baselines would
        # render as permanently-unchanged rows on every push.
        assert "seed_baselines" not in entries
        assert "check_only" not in entries

    def test_delta_table_flags_regressions_warn_only(
        self, microbench_delta, tmp_path
    ):
        current = self._write(tmp_path, "current.json", self.CURRENT)
        previous = self._write(tmp_path, "previous.json", self.PREVIOUS)
        summary = tmp_path / "summary.md"
        code = microbench_delta.main(
            [
                "--current",
                str(current),
                "--previous",
                str(previous),
                "--summary",
                str(summary),
            ]
        )
        assert code == 0
        table = summary.read_text(encoding="utf-8")
        assert "| repgen_n3_q3 | seconds | 1 | 1.5 | +50.0% ⚠ |" in table
        # A ratio drop beyond the threshold also warns...
        assert "| repgen_n3_q3 | speedup_vs_seed | 9 | 6 | -33.3% ⚠ |" in table
        # ...but a change within it does not.
        assert "| search_tof3 | seconds | 0.5 | 0.6 | +20.0% |" in table
        # Entries present on only one side render with a placeholder.
        assert "| new_entry | seconds | — | 0.1 | — |" in table
        assert "| old_entry | seconds | 0.2 | — | — |" in table

    def test_missing_previous_is_not_an_error(self, microbench_delta, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", self.CURRENT)
        code = microbench_delta.main(
            ["--current", str(current), "--previous", str(tmp_path / "absent.json")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "No previous artifact" in out
        assert "| new_entry | seconds |" in out

    def test_missing_current_is_reported_but_exits_zero(
        self, microbench_delta, tmp_path, capsys
    ):
        code = microbench_delta.main(
            ["--current", str(tmp_path / "nope.json")]
        )
        assert code == 0
        assert "no current trajectory" in capsys.readouterr().out
