"""Tests for exact complex numbers over Q[sqrt(2)]."""

import cmath
import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.cnumber import CNumber
from repro.linalg.qsqrt2 import QSqrt2

rationals = st.fractions(min_value=-20, max_value=20, max_denominator=8)
qsqrt2s = st.builds(QSqrt2, rationals, rationals)
cnumbers = st.builds(CNumber, qsqrt2s, qsqrt2s)


class TestConstruction:
    def test_constants(self):
        assert CNumber.zero().is_zero()
        assert CNumber.one().is_one()
        assert complex(CNumber.i()) == 1j

    def test_eighth_roots_of_unity(self):
        for k in range(8):
            value = CNumber.from_exp_i_pi_multiple(Fraction(k, 4))
            expected = cmath.exp(1j * math.pi * k / 4)
            assert value.is_close_to(expected)

    def test_exp_periodicity(self):
        assert CNumber.from_exp_i_pi_multiple(Fraction(9, 4)) == CNumber.from_exp_i_pi_multiple(
            Fraction(1, 4)
        )

    def test_unrepresentable_angle_raises(self):
        with pytest.raises(ValueError):
            CNumber.from_exp_i_pi_multiple(Fraction(1, 8))

    def test_cos_sin_pi_multiples(self):
        assert CNumber.cos_pi_multiple(Fraction(1, 2)).is_zero()
        assert CNumber.sin_pi_multiple(Fraction(1, 2)) == CNumber.one()
        assert CNumber.cos_pi_multiple(Fraction(1)) == CNumber(-1)

    def test_str_and_repr(self):
        assert "i" in str(CNumber(0, 1))
        assert "CNumber" in repr(CNumber(1, 1))


class TestArithmetic:
    def test_i_squared(self):
        assert CNumber.i() * CNumber.i() == CNumber(-1)

    def test_conjugate(self):
        value = CNumber(QSqrt2(1, 1), QSqrt2(2))
        assert value.conjugate() == CNumber(QSqrt2(1, 1), QSqrt2(-2))

    def test_division(self):
        value = CNumber(3, 4)
        assert value / value == CNumber.one()

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            CNumber.zero().inverse()

    def test_pow(self):
        assert CNumber.i() ** 4 == CNumber.one()
        assert CNumber.from_exp_i_pi_multiple(Fraction(1, 4)) ** 8 == CNumber.one()

    def test_mixed_arithmetic_with_ints(self):
        assert CNumber(1, 1) + 1 == CNumber(2, 1)
        assert 2 * CNumber(1, 1) == CNumber(2, 2)

    @settings(max_examples=40, deadline=None)
    @given(cnumbers, cnumbers)
    def test_multiplication_matches_python_complex(self, x, y):
        assert cmath.isclose(
            complex(x * y), complex(x) * complex(y), abs_tol=1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(cnumbers, cnumbers)
    def test_addition_matches_python_complex(self, x, y):
        assert cmath.isclose(
            complex(x + y), complex(x) + complex(y), abs_tol=1e-6
        )

    @settings(max_examples=40, deadline=None)
    @given(cnumbers)
    def test_conjugate_involution(self, x):
        assert x.conjugate().conjugate() == x

    @settings(max_examples=40, deadline=None)
    @given(cnumbers)
    def test_modulus_squared_is_real(self, x):
        norm = x * x.conjugate()
        assert norm.im.is_zero()
