"""Tests for the pluggable simulator-backend registry.

The parity property the registry must preserve: swapping the backend may
change *how fast* states evolve but never *which circuits are judged
equivalent*.  The numba kernel's logic is exercised everywhere through its
uncompiled reference (:func:`apply_gate_reference`); the JIT-compiled
backend itself is additionally tested when numba is installed (the CI
numba leg) and skipped — never failed — when it is not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmarks_suite import benchmark_circuit
from repro.ir.circuit import Circuit, Instruction
from repro.ir.params import Angle
from repro.preprocess import preprocess
from repro.semantics.backend import (
    BackendUnavailableError,
    NumpyBackend,
    SimulatorBackend,
    available_backends,
    backend_available,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.semantics.fingerprint import FingerprintContext
from repro.semantics.numba_backend import apply_gate_reference, numba_available
from repro.semantics.simulator import (
    circuit_unitary,
    instruction_unitary,
    random_state,
    unitaries_equal_up_to_phase,
)

#: Small benchmark circuits whose full unitaries stay cheap to form.
PARITY_BENCHMARKS = ["tof_3", "barenco_tof_3", "mod5_4"]


class KernelReferenceBackend(SimulatorBackend):
    """The numba kernel's logic, uncompiled — runs on every machine."""

    name = "kernel-reference"

    def apply_gate(self, state, matrix, qubits, num_qubits):
        return apply_gate_reference(state, matrix, qubits, num_qubits)


class TestRegistry:
    def test_numpy_is_the_default_and_always_available(self):
        assert get_backend().name == "numpy"
        assert get_backend("numpy") is get_backend("NumPy")
        assert "numpy" in available_backends()
        assert backend_available("numpy")

    def test_numba_is_registered_even_when_unavailable(self):
        assert "numba" in registered_backends()
        if not numba_available():
            assert "numba" not in available_backends()
            with pytest.raises(BackendUnavailableError, match="numba"):
                get_backend("numba")

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(KeyError, match="numpy"):
            get_backend("tpu")

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_registration_conflicts_and_replacement(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)
        register_backend("test-backend", KernelReferenceBackend)
        try:
            assert get_backend("test-backend").name == "kernel-reference"
        finally:
            from repro.semantics import backend as backend_module

            backend_module._FACTORIES.pop("test-backend")
            backend_module._INSTANCES.pop("test-backend", None)


class TestKernelParity:
    """The kernel must agree with numpy on every gate shape (1q/2q/3q)."""

    @pytest.mark.parametrize(
        "gate,qubits,num_qubits",
        [
            ("h", (0,), 1),
            ("h", (2,), 4),
            ("x", (1,), 3),
            ("cx", (0, 1), 2),
            ("cx", (3, 1), 4),
            ("cz", (1, 0), 3),
            ("ccx", (0, 3, 2), 4),
            ("ccx", (4, 0, 2), 5),
        ],
    )
    def test_matches_numpy_on_random_states(self, gate, qubits, num_qubits):
        rng = np.random.default_rng(11)
        matrix = instruction_unitary(Instruction(gate, qubits))
        state = random_state(num_qubits, rng)
        expected = get_backend("numpy").apply_gate(state, matrix, qubits, num_qubits)
        actual = apply_gate_reference(state, matrix, qubits, num_qubits)
        np.testing.assert_allclose(actual, expected, atol=1e-12)

    def test_circuit_level_parity_on_generic_backend(self):
        from fractions import Fraction

        backend = KernelReferenceBackend()
        circuit = (
            Circuit(3).h(0).cx(0, 1).t(1).ccx(0, 1, 2).rz(2, Fraction(1, 4))
        )
        rng = np.random.default_rng(5)
        state = random_state(3, rng)
        np.testing.assert_allclose(
            backend.apply_circuit(circuit, state),
            get_backend("numpy").apply_circuit(circuit, state),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            backend.circuit_unitary(circuit),
            circuit_unitary(circuit),
            atol=1e-12,
        )


def _parity_verdicts(backend: SimulatorBackend):
    """Equivalence verdicts over benchmark pairs, computed on ``backend``."""
    verdicts = []
    for name in PARITY_BENCHMARKS:
        circuit = benchmark_circuit(name)
        preprocessed = preprocess(circuit, "nam")
        # Equivalent pair: the preprocessor preserves semantics up to phase.
        left = backend.circuit_unitary(circuit)
        right = backend.circuit_unitary(preprocessed)
        verdicts.append(unitaries_equal_up_to_phase(left, right))
        # Non-equivalent pair: append one extra gate.
        tampered = preprocessed.copy().x(0)
        verdicts.append(
            unitaries_equal_up_to_phase(left, backend.circuit_unitary(tampered))
        )
    return verdicts


class TestBenchmarkVerdictParity:
    def test_reference_kernel_verdicts_match_numpy(self):
        numpy_verdicts = _parity_verdicts(get_backend("numpy"))
        assert numpy_verdicts == _parity_verdicts(KernelReferenceBackend())
        # Sanity: the pairs really alternate equivalent / not equivalent.
        assert numpy_verdicts == [True, False] * len(PARITY_BENCHMARKS)

    def test_numba_verdicts_match_numpy(self):
        pytest.importorskip("numba")
        numpy_verdicts = _parity_verdicts(get_backend("numpy"))
        assert numpy_verdicts == _parity_verdicts(get_backend("numba"))


class TestFingerprintBackendWiring:
    def test_default_backend_hash_keys_are_bit_identical(self):
        """The backend seam must not perturb the reference fingerprints."""
        circuits = [
            Circuit(2),
            Circuit(2).h(0),
            Circuit(2).h(0).cx(0, 1),
            Circuit(2).cx(1, 0).t(0).tdg(1),
            Circuit(2, num_params=2).rz(0, Angle.param(0)).h(1).cx(0, 1),
        ]
        default = FingerprintContext(2, 2)
        explicit = FingerprintContext(2, 2, backend="numpy")
        assert default.backend_name == "numpy"
        for circuit in circuits:
            assert default.hash_key(circuit) == explicit.hash_key(circuit)
            assert default.fingerprint(circuit) == explicit.fingerprint(circuit)

    def test_spec_roundtrip_carries_the_backend(self):
        context = FingerprintContext(2, 1, backend="numpy")
        spec = context.spec()
        assert spec["backend"] == "numpy"
        rebuilt = FingerprintContext.from_spec(spec)
        assert rebuilt.backend_name == "numpy"
        circuit = Circuit(2).h(0).cx(0, 1)
        assert rebuilt.hash_key(circuit) == context.hash_key(circuit)

    def test_old_specs_without_backend_still_load(self):
        context = FingerprintContext(2, 1)
        spec = context.spec()
        del spec["backend"]
        assert FingerprintContext.from_spec(spec).backend_name == "numpy"

    def test_numba_backend_fingerprints_bucket_consistently(self):
        pytest.importorskip("numba")
        numba_context = FingerprintContext(2, 0, backend="numba")
        numpy_context = FingerprintContext(2, 0)
        circuit = Circuit(2).h(0).cx(0, 1).t(1).h(1)
        # Same random inputs, numerically equal fingerprints (the float
        # arithmetic differs, so equality is up to tolerance, and the
        # bucket keys may differ by at most one).
        assert numba_context.fingerprint(circuit) == pytest.approx(
            numpy_context.fingerprint(circuit), abs=1e-9
        )
        assert abs(
            numba_context.hash_key(circuit) - numpy_context.hash_key(circuit)
        ) <= 1


class TestVerifierBackendWiring:
    def test_verifier_screens_on_the_selected_backend(self):
        from repro.verifier import EquivalenceVerifier

        verifier = EquivalenceVerifier(num_params=0)
        assert verifier.backend_name == "numpy"
        flipped = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        target = Circuit(2).cx(1, 0)
        assert verifier.verify(flipped, target).equivalent
        with pytest.raises(KeyError):
            EquivalenceVerifier(num_params=0, backend="no-such-backend")

    def test_repgen_shares_context_only_on_matching_backend(self):
        from repro.generator import RepGen
        from repro.ir.gatesets import NAM
        from repro.verifier import EquivalenceVerifier

        generator = RepGen(NAM, num_qubits=2, num_params=2)
        # The default verifier inherits the generator's backend, so the
        # evolved-state cache is shared (same object).
        assert generator.verifier.backend_name == generator.backend_name
        assert (
            generator.verifier._fingerprint_contexts.get(2)
            is generator.fingerprints
        )
        # A mismatched verifier keeps its own contexts.
        foreign = EquivalenceVerifier(num_params=2, seed=999)
        generator2 = RepGen(NAM, num_qubits=2, num_params=2, verifier=foreign)
        assert foreign._fingerprint_contexts.get(2) is not generator2.fingerprints


class TestNumbaBackendEndToEnd:
    def test_numba_generation_matches_numpy_eccs(self):
        pytest.importorskip("numba")
        from repro.generator import RepGen
        from repro.ir.gatesets import NAM

        numpy_result = RepGen(NAM, num_qubits=2, num_params=2).generate(2)
        numba_result = RepGen(
            NAM, num_qubits=2, num_params=2, backend="numba"
        ).generate(2)
        assert (
            numba_result.stats.num_eccs == numpy_result.stats.num_eccs
        )
        assert (
            numba_result.stats.num_transformations
            == numpy_result.stats.num_transformations
        )


class TestBatchedVerdictIdentity:
    """The batched verifier path must agree with the per-trial one.

    ``circuits_equivalent_statevector_batched`` is the seam the facade and
    the service ride (PR 8): same trial draws (``equivalence_trial_inputs``),
    same tolerance, one ``apply_circuit_batch`` instead of per-trial calls —
    so its *verdict* must be indistinguishable from the scalar path.
    """

    def _pairs(self):
        for name in PARITY_BENCHMARKS:
            circuit = benchmark_circuit(name)
            preprocessed = preprocess(circuit, "nam")
            yield circuit, preprocessed  # equivalent
            yield circuit, preprocessed.copy().x(0)  # not equivalent

    def test_batched_matches_per_trial_verdicts(self):
        from repro.semantics.backend import (
            circuits_equivalent_statevector,
            circuits_equivalent_statevector_batched,
        )

        backend = get_backend("numpy")
        for circuit_a, circuit_b in self._pairs():
            scalar = circuits_equivalent_statevector(
                circuit_a, circuit_b, backend=backend
            )
            batched = circuits_equivalent_statevector_batched(
                circuit_a, circuit_b, backend=backend
            )
            assert batched == scalar

    def test_qubit_count_mismatch_is_not_equivalent(self):
        from repro.semantics.backend import circuits_equivalent_statevector_batched

        assert not circuits_equivalent_statevector_batched(
            Circuit(1).h(0), Circuit(2).h(0), backend=get_backend("numpy")
        )

    def test_shared_draws_come_from_one_seeded_stream(self):
        from repro.semantics.backend import equivalence_trial_inputs

        params_a, states_a = equivalence_trial_inputs(3, 2, num_trials=2, seed=7)
        params_b, states_b = equivalence_trial_inputs(3, 2, num_trials=2, seed=7)
        assert params_a == params_b
        np.testing.assert_array_equal(states_a, states_b)
        assert states_a.shape == (2, 8)
        # A different seed draws different trials.
        _, states_c = equivalence_trial_inputs(3, 2, num_trials=2, seed=8)
        assert not np.array_equal(states_a, states_c)
