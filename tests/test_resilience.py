"""End-to-end resilience tests: recovery must never change the output.

Every fault class the pools recover from — killed workers, delayed chunks,
clean in-worker failures, exhausted retry budgets — is injected here
against a real multi-worker RepGen run, and the resulting
``ECCSet.to_json`` is asserted *byte-identical* to the serial baseline.
Recovery is additionally asserted to be observable (the ``resilience.*``
perf counters) and leak-free (no worker process outlives its run, even
when an exception escapes mid-round).
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro import faults
from repro.errors import FaultInjected
from repro.faults import FaultPlan
from repro.generator import RepGen
from repro.generator import parallel as gen_parallel
from repro.ir.gatesets import NAM
from repro.workerpool import (
    ResilientPool,
    resolve_chunk_retries,
    resolve_chunk_timeout,
)

#: Small enough that an injected delay/kill is detected in ~a second, large
#: enough that honest chunks at this scale never time out spuriously.
TIMEOUT = 2.0


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.set_fault_plan(None)
    yield
    faults.set_fault_plan(None)


def _generate(plan=None, **kwargs):
    faults.set_fault_plan(FaultPlan.from_string(plan) if plan else None)
    generator = RepGen(NAM, num_qubits=2, num_params=2, **kwargs)
    result = generator.generate(2)
    return result


@pytest.fixture(scope="module")
def serial_json():
    generator = RepGen(NAM, num_qubits=2, num_params=2, workers=1)
    return generator.generate(2).ecc_set.to_json()


class TestByteIdentityUnderFaults:
    def test_killed_gen_worker(self, serial_json):
        result = _generate(
            "kill_worker:gen:round2", workers=2, chunk_timeout=TIMEOUT, chunk_retries=2
        )
        assert result.ecc_set.to_json() == serial_json
        perf = result.stats.perf
        assert perf.get("resilience.faults_injected") == 1
        assert perf.get("resilience.chunk_timeouts", 0) >= 1
        assert perf.get("resilience.pool_respawns", 0) >= 1
        assert perf.get("resilience.chunk_retries", 0) >= 1
        # The run recovered: no round fell back to the serial path.
        assert "resilience.rounds_degraded" not in perf

    def test_delayed_gen_chunk(self, serial_json):
        result = _generate(
            "delay_chunk:gen:round2", workers=2, chunk_timeout=TIMEOUT, chunk_retries=2
        )
        assert result.ecc_set.to_json() == serial_json
        assert result.stats.perf.get("resilience.chunk_timeouts", 0) >= 1

    def test_failed_gen_chunk(self, serial_json):
        result = _generate(
            "fail_chunk:gen:round2", workers=2, chunk_timeout=TIMEOUT, chunk_retries=2
        )
        assert result.ecc_set.to_json() == serial_json
        perf = result.stats.perf
        assert perf.get("resilience.chunk_failures", 0) >= 1
        assert perf.get("resilience.chunk_retries", 0) >= 1
        # A clean in-worker exception retries on the live pool: no respawn.
        assert "resilience.pool_respawns" not in perf

    def test_killed_verify_worker(self, serial_json):
        result = _generate(
            "kill_worker:verify:round2",
            verify_workers=2,
            chunk_timeout=TIMEOUT,
            chunk_retries=2,
        )
        assert result.ecc_set.to_json() == serial_json
        assert result.stats.perf.get("resilience.pool_respawns", 0) >= 1

    def test_failed_verify_chunk(self, serial_json):
        result = _generate(
            "fail_chunk:verify:round2",
            verify_workers=2,
            chunk_timeout=TIMEOUT,
            chunk_retries=2,
        )
        assert result.ecc_set.to_json() == serial_json
        assert result.stats.perf.get("resilience.chunk_failures", 0) >= 1

    def test_exhausted_retries_degrade_the_round_not_the_run(self, serial_json):
        # Every dispatch's first attempt fails and the budget is zero, so
        # each parallel round degrades to serial — and the output still
        # does not move by a byte.
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = _generate(
                "fail_chunk:gen:*", workers=2, chunk_timeout=TIMEOUT, chunk_retries=0
            )
        assert result.ecc_set.to_json() == serial_json
        assert result.stats.perf.get("resilience.rounds_degraded", 0) >= 1


class TestNoLeakedWorkers:
    def _foreign_children(self, before):
        return {
            child.pid
            for child in multiprocessing.active_children()
            if child.pid not in before
        }

    def test_exception_mid_round_terminates_every_worker(self):
        # PR 6's pool-leak bugfix: when an exception escapes between pool
        # creation and the end of the round loop, every worker process must
        # still be torn down.  crash_run raises in the parent mid-run with
        # both pools alive — the historical leak scenario.
        before = {child.pid for child in multiprocessing.active_children()}
        faults.set_fault_plan(FaultPlan.from_string("crash_run:gen:round1"))
        generator = RepGen(
            NAM, num_qubits=2, num_params=2, workers=2, verify_workers=2
        )
        with pytest.raises(FaultInjected):
            generator.generate(2)
        deadline = time.perf_counter() + 10.0
        while self._foreign_children(before) and time.perf_counter() < deadline:
            time.sleep(0.05)
        assert self._foreign_children(before) == set()

    def test_pool_context_manager_terminates_workers(self):
        before = {child.pid for child in multiprocessing.active_children()}
        generator = RepGen(NAM, num_qubits=2, num_params=2)
        with gen_parallel.ParallelFingerprintPool(
            generator.fingerprints.spec(), 2
        ) as pool:
            assert pool.workers == 2
        deadline = time.perf_counter() + 10.0
        while self._foreign_children(before) and time.perf_counter() < deadline:
            time.sleep(0.05)
        assert self._foreign_children(before) == set()


def _noop_init() -> None:
    pass


def _buggy_chunk_fn(payload):
    chunk, _token = payload
    return chunk + None  # seeded TypeError: a bug, not an infrastructure fault


class TestProgrammingErrorsSurface:
    def test_seeded_typeerror_in_chunk_fn_propagates(self):
        # The retry loop absorbs infrastructure faults (timeouts, crashes,
        # FaultInjected) — a TypeError from a buggy chunk function must NOT
        # be retried into RetryExhausted and a degraded round; it surfaces
        # with its original type so the bug is debuggable.
        from repro.perf import PerfRecorder

        perf = PerfRecorder()
        with ResilientPool(
            _buggy_chunk_fn,
            _noop_init,
            (),
            2,
            site="gen",
            chunk_timeout=TIMEOUT,
            chunk_retries=3,
            perf=perf,
        ) as pool:
            with pytest.raises(TypeError):
                pool.run_chunks([1, 2, 3])
        # No retry budget was burned on the programming error.
        assert perf.value("resilience.chunk_retries") == 0
        assert perf.value("resilience.chunk_failures") == 0

    def test_fault_injected_stays_retryable(self):
        # Contrast: the chaos machinery's own exception remains on the
        # absorb-and-retry path (fail_chunk recovery is exercised end-to-end
        # in TestByteIdentityUnderFaults; this pins the classification).
        from repro.workerpool import _RETRYABLE_CHUNK_ERRORS

        assert issubclass(FaultInjected, _RETRYABLE_CHUNK_ERRORS)
        assert not issubclass(TypeError, _RETRYABLE_CHUNK_ERRORS)


class TestChunkPurity:
    def test_chunk_results_are_bit_identical_on_re_execution(self):
        # The safety argument for re-dispatch: a chunk's results are a pure
        # function of (chunk payload, worker-initializer spec), so a retried
        # chunk returns exactly what the first dispatch would have.
        generator = RepGen(NAM, num_qubits=2, num_params=2)
        parent = generator.generate(1).representatives[0]
        extensions = list(generator.single_gate_instructions(parent.used_params()))
        assert extensions
        chunk = [(parent, extensions)]
        gen_parallel._init_worker(dict(generator.fingerprints.spec()))
        first = gen_parallel._hash_keys_for_chunk((chunk, None))
        gen_parallel._init_worker(dict(generator.fingerprints.spec()))
        second = gen_parallel._hash_keys_for_chunk((chunk, None))
        assert [keys for keys, _ in first] == [keys for keys, _ in second]
        for (_, states_a), (_, states_b) in zip(first, second):
            for state_a, state_b in zip(states_a, states_b):
                assert (state_a is None) == (state_b is None)
                if state_a is not None:
                    assert np.array_equal(state_a, state_b)


class TestKnobResolution:
    def test_timeout_defaults_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_TIMEOUT", raising=False)
        assert resolve_chunk_timeout(None) == 120.0
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "7.5")
        assert resolve_chunk_timeout(None) == 7.5

    def test_explicit_timeout_wins_and_nonpositive_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "7.5")
        assert resolve_chunk_timeout(3.0) == 3.0
        assert resolve_chunk_timeout(0) is None
        assert resolve_chunk_timeout(-1) is None

    def test_retries_default_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_RETRIES", raising=False)
        assert resolve_chunk_retries(None) == 2
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "5")
        assert resolve_chunk_retries(None) == 5

    def test_explicit_retries_clamp_at_zero(self):
        assert resolve_chunk_retries(3) == 3
        assert resolve_chunk_retries(-2) == 0

    def test_single_worker_pool_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            ResilientPool(print, print, (), 1, site="gen")
