"""The optimization service: batching, determinism, errors, the wire.

The acceptance property of the service PR is at the top: N concurrent
*distinct* circuits must co-batch (``service.batch.occupancy`` > 1) while
every job's deterministic ``result`` block stays **byte-identical** to a
serial, direct :class:`~repro.api.Superoptimizer` run of the same circuit
and config.  The rest covers the dispatcher's verdict semantics, the
content-hash cache and in-flight dedupe, the typed error paths (400 /
429 + ``Retry-After`` / 404 / worker-crash retries ending in 500
``RetryExhausted``), graceful drain, and the stdlib HTTP front end-to-end
on an ephemeral port.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.api import RunConfig, Superoptimizer
from repro.benchmarks_suite import benchmark_circuit
from repro.errors import (
    FaultInjected,
    InvalidRequest,
    JobNotFound,
    QueueFull,
    RetryExhausted,
    ServiceClosed,
)
from repro.ir.qasm import parse_qasm, to_qasm
from repro.service import BatchingDispatcher, JobManager, OptimizationHTTPServer, ServiceConfig
from repro.service.executor import InlineExecutor, execute_job
from repro.service.jobs import _result_block

#: One base config for the whole module so the warm-facade table is built
#: once (generation at n=2/q=2 is the only slow step).
BASE_RUN = RunConfig().with_overrides(n=2, q=2, cache_enabled=False, verify_output=True)

CIRCUITS = ("tof_3", "barenco_tof_3", "mod5_4")

QASM_1Q_H = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nh q[0];\n'
QASM_1Q_HH = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nh q[0];\nh q[0];\n'
QASM_1Q_EMPTY = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\n'
QASM_1Q_X = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\nx q[0];\n'
QASM_2Q = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncx q[0],q[1];\n'


def qasm_for(name: str) -> str:
    return to_qasm(benchmark_circuit(name))


def manager(**service_kwargs: Any) -> JobManager:
    service_kwargs.setdefault("run_config", BASE_RUN)
    return JobManager(ServiceConfig(**service_kwargs))


def serial_result_block(name: str) -> Dict[str, Any]:
    """What a direct facade run reports, shaped as the service's block."""
    report = Superoptimizer(BASE_RUN).optimize(benchmark_circuit(name)).to_json_dict()
    return _result_block(report, report["verified"])


class TestBatchingDispatcher:
    def test_verdicts_match_facade_semantics(self):
        with BatchingDispatcher(window_ms=1.0) as dispatcher:
            equivalent = dispatcher.submit_pair(
                parse_qasm(QASM_1Q_HH), parse_qasm(QASM_1Q_EMPTY), job_key="eq"
            )
            different = dispatcher.submit_pair(
                parse_qasm(QASM_1Q_H), parse_qasm(QASM_1Q_X), job_key="ne"
            )
            mismatch = dispatcher.submit_pair(
                parse_qasm(QASM_1Q_H), parse_qasm(QASM_2Q), job_key="mm"
            )
            assert equivalent.result(10) is True
            assert different.result(10) is False
            assert mismatch.result(10) is False

    def test_concurrent_pairs_share_a_flush(self):
        with BatchingDispatcher(window_ms=250.0) as dispatcher:
            first = dispatcher.submit_pair(
                parse_qasm(QASM_1Q_HH), parse_qasm(QASM_1Q_EMPTY), job_key="job-a"
            )
            second = dispatcher.submit_pair(
                parse_qasm(QASM_1Q_H), parse_qasm(QASM_1Q_X), job_key="job-b"
            )
            assert first.result(10) is True
            assert second.result(10) is False
            snapshot = dispatcher.snapshot()
        assert snapshot["service.batch.occupancy"] == 2
        assert snapshot["service.batch.flushes"] == 1
        assert snapshot["service.batch.pairs"] == 2


class TestCrossRequestByteIdentity:
    """The acceptance test: co-batching must not change a single byte."""

    def test_concurrent_distinct_circuits_cobatch_and_match_serial(self):
        serial = {name: serial_result_block(name) for name in CIRCUITS}
        # A generous window so all verifications land in one flush even on
        # a loaded machine; executor_slots >= 2 runs jobs concurrently.
        with manager(batch_window_ms=400.0) as service:
            jobs = {name: service.submit(qasm_for(name)) for name in CIRCUITS}
            for job in jobs.values():
                assert job.wait(120)
            stats = service.stats()
        for name, job in jobs.items():
            assert job.status == "completed"
            assert job.result["verified"] is True
            assert json.dumps(job.result, sort_keys=True) == json.dumps(
                serial[name], sort_keys=True
            )
        assert stats["service.batch.occupancy"] > 1
        assert stats["service.batch.shared_gate_calls"] > 0

    def test_cache_hit_returns_identical_result(self):
        with manager() as service:
            first = service.submit(qasm_for("tof_3"))
            assert first.wait(120)
            again = service.submit(qasm_for("tof_3"))
            assert again.finished and again.cached
            assert json.dumps(again.result, sort_keys=True) == json.dumps(
                first.result, sort_keys=True
            )
            stats = service.stats()
        assert stats["service.cache.hits"] == 1

    def test_formatting_differences_do_not_defeat_the_cache(self):
        qasm = qasm_for("tof_3")
        with manager() as service:
            first = service.submit(qasm)
            assert first.wait(120)
            noisy = qasm.replace(";\n", ";\n\n")  # same circuit, other bytes
            assert service.submit(noisy).cached


class _BlockingExecutor:
    """Holds every job until released; exposes how many got started."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.started = threading.Semaphore(0)

    def run(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.started.release()
        assert self.release.wait(30), "test never released the executor"
        return execute_job(payload)

    def close(self) -> None:
        pass


class TestQueueAndDedupe:
    def test_queue_full_rejects_with_429_class(self):
        executor = _BlockingExecutor()
        service = JobManager(
            ServiceConfig(run_config=BASE_RUN, max_queue=1),
            executor=executor,
        )
        try:
            # Two jobs occupy both executor slots (waiting for each to start
            # avoids racing the queue bound), the third fills the queue.
            for name in ("tof_3", "barenco_tof_3"):
                service.submit(qasm_for(name))
                assert executor.started.acquire(timeout=10)
            service.submit(qasm_for("mod5_4"))
            with pytest.raises(QueueFull) as excinfo:
                service.submit(qasm_for("tof_4"))
            assert excinfo.value.http_status == 429
            assert service.stats()["service.queue.rejected"] == 1
        finally:
            executor.release.set()
            service.close()

    def test_in_flight_duplicate_attaches_to_running_job(self):
        executor = _BlockingExecutor()
        service = JobManager(
            ServiceConfig(run_config=BASE_RUN), executor=executor
        )
        try:
            first = service.submit(qasm_for("tof_3"))
            assert executor.started.acquire(timeout=10)
            duplicate = service.submit(qasm_for("tof_3"))
            assert duplicate is first
            assert first.dedupe_hits == 1
            assert service.stats()["service.dedupe.hits"] == 1
        finally:
            executor.release.set()
            service.close()
        assert first.status == "completed"


class TestErrorPaths:
    def test_malformed_qasm_is_invalid_request(self):
        with manager() as service:
            with pytest.raises(InvalidRequest) as excinfo:
                service.submit("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n")
            assert excinfo.value.http_status == 400
            with pytest.raises(InvalidRequest):
                service.submit("   ")

    def test_bad_config_override_is_a_400_at_submit(self):
        with manager() as service:
            with pytest.raises(InvalidRequest):
                service.submit(qasm_for("tof_3"), {"backend": "no-such-backend"})
            with pytest.raises(InvalidRequest):
                service.submit(qasm_for("tof_3"), {"not_a_knob": 1})
            assert service.stats()["service.jobs.failed"] == 0

    def test_unknown_job_id_is_404(self):
        with manager() as service:
            with pytest.raises(JobNotFound) as excinfo:
                service.get("job-999")
            assert excinfo.value.http_status == 404

    def test_crashing_worker_retries_then_recovers(self):
        crashes = {"left": 2}

        def flaky(payload: Dict[str, Any]) -> Dict[str, Any]:
            if crashes["left"]:
                crashes["left"] -= 1
                raise FaultInjected("injected worker crash")
            return execute_job(payload)

        service = JobManager(
            ServiceConfig(run_config=BASE_RUN),
            executor=InlineExecutor(chunk_retries=2, runner=flaky),
        )
        with service:
            job = service.submit(qasm_for("tof_3"))
            assert job.wait(120)
        assert job.status == "completed"
        assert crashes["left"] == 0
        assert json.dumps(job.result, sort_keys=True) == json.dumps(
            serial_result_block("tof_3"), sort_keys=True
        )

    def test_retry_exhaustion_fails_the_job_with_the_taxonomy(self):
        def always_crashing(payload: Dict[str, Any]) -> Dict[str, Any]:
            raise FaultInjected("injected worker crash")

        service = JobManager(
            ServiceConfig(run_config=BASE_RUN),
            executor=InlineExecutor(chunk_retries=1, runner=always_crashing),
        )
        with service:
            job = service.submit(qasm_for("tof_3"))
            assert job.wait(30)
        assert job.status == "failed"
        assert job.error["type"] == RetryExhausted.__name__
        assert service.stats()["service.jobs.failed"] == 1


class TestShutdown:
    def test_drain_finishes_queued_jobs(self):
        service = manager()
        jobs = [service.submit(qasm_for(name)) for name in CIRCUITS]
        service.close(drain=True)
        assert all(job.status == "completed" for job in jobs)
        with pytest.raises(ServiceClosed) as excinfo:
            service.submit(qasm_for("tof_3"))
        assert excinfo.value.http_status == 503

    def test_non_drain_fails_queued_jobs(self):
        executor = _BlockingExecutor()
        service = JobManager(
            ServiceConfig(run_config=BASE_RUN), executor=executor
        )
        jobs = []
        for name in ("tof_3", "barenco_tof_3"):
            jobs.append(service.submit(qasm_for(name)))
            assert executor.started.acquire(timeout=10)
        jobs.append(service.submit(qasm_for("mod5_4")))  # stays queued
        # Close from a helper thread: it fails the queued job immediately,
        # then blocks joining the executor threads until we release them.
        closer = threading.Thread(target=lambda: service.close(drain=False))
        closer.start()
        assert jobs[2].wait(10)
        executor.release.set()
        closer.join(30)
        assert jobs[2].status == "failed"
        assert jobs[2].error["type"] == "ServiceClosed"
        assert jobs[0].status == "completed" and jobs[1].status == "completed"


class TestPoolMode:
    """``workers >= 2``: jobs ride a persistent multiprocess pool."""

    def test_pooled_jobs_match_serial_results(self):
        config = ServiceConfig(run_config=BASE_RUN, workers=2)
        assert config.pooled and config.executor_slots == 2
        serial = {name: serial_result_block(name) for name in ("tof_3", "mod5_4")}
        with JobManager(config) as service:
            jobs = {
                name: service.submit(qasm_for(name)) for name in ("tof_3", "mod5_4")
            }
            for job in jobs.values():
                assert job.wait(240)
        for name, job in jobs.items():
            assert job.status == "completed", (job.status, job.error)
            assert json.dumps(job.result, sort_keys=True) == json.dumps(
                serial[name], sort_keys=True
            )


# -- the HTTP front ------------------------------------------------------------


class _ServerThread:
    """Run an :class:`OptimizationHTTPServer` on its own loop + thread."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        manager: Optional[JobManager] = None,
    ) -> None:
        self.server = OptimizationHTTPServer(manager, config=config)
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        serving = asyncio.create_task(self.server.serve_forever())
        await self._stop.wait()
        serving.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serving
        await self.server.stop(drain=True)

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._started.wait(30), "server failed to boot"
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._loop is not None and self._stop is not None
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(60)

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def request(
        self,
        method: str,
        path: str,
        body: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=120)
        try:
            conn.request(method, path, body)
            response = conn.getresponse()
            headers = {k.lower(): v for k, v in response.getheaders()}
            payload = json.loads(response.read().decode("utf-8"))
            return response.status, headers, payload
        finally:
            conn.close()


@pytest.fixture(scope="module")
def http_server():
    config = ServiceConfig(port=0, batch_window_ms=50.0, run_config=BASE_RUN)
    with _ServerThread(config) as server:
        yield server


class TestHTTPServer:
    def test_optimize_roundtrip_matches_serial_run(self, http_server):
        status, _, submitted = http_server.request(
            "POST", "/v1/optimize", json.dumps({"qasm": qasm_for("tof_3")})
        )
        assert status == 200
        job_id = submitted["job_id"]
        status, _, record = http_server.request("GET", f"/v1/jobs/{job_id}?wait=120")
        assert status == 200
        assert record["status"] == "completed"
        assert json.dumps(record["result"], sort_keys=True) == json.dumps(
            serial_result_block("tof_3"), sort_keys=True
        )
        assert "service.batch.flushes" in record["service"]

    def test_raw_qasm_body_is_accepted(self, http_server):
        status, _, submitted = http_server.request(
            "POST", "/v1/optimize", qasm_for("tof_3")
        )
        assert status == 200
        status, _, record = http_server.request(
            "GET", f"/v1/jobs/{submitted['job_id']}?wait=120"
        )
        assert status == 200 and record["status"] == "completed"

    def test_malformed_qasm_is_http_400(self, http_server):
        status, _, payload = http_server.request(
            "POST", "/v1/optimize", json.dumps({"qasm": "qreg broken"})
        )
        assert status == 400
        assert payload["error"] == "InvalidRequest"
        status, _, payload = http_server.request(
            "POST", "/v1/optimize", '{"not": "qasm"}'
        )
        assert status == 400

    def test_unknown_job_is_http_404(self, http_server):
        status, _, payload = http_server.request("GET", "/v1/jobs/job-999999")
        assert status == 404
        assert payload["error"] == "JobNotFound"

    def test_unknown_route_and_wrong_method(self, http_server):
        status, _, _ = http_server.request("GET", "/v2/nope")
        assert status == 404
        status, _, _ = http_server.request("GET", "/v1/optimize")
        assert status == 405

    def test_stats_and_healthz(self, http_server):
        status, _, payload = http_server.request("GET", "/v1/healthz")
        assert status == 200 and payload == {"status": "ok"}
        status, _, stats = http_server.request("GET", "/v1/stats")
        assert status == 200
        for key in (
            "service.jobs.submitted",
            "service.cache.hits",
            "service.batch.occupancy",
            "service.queue.depth",
        ):
            assert key in stats

    def test_event_stream_ends_with_terminal_status(self, http_server):
        _, _, submitted = http_server.request(
            "POST", "/v1/optimize", json.dumps({"qasm": qasm_for("mod5_4")})
        )
        job_id = submitted["job_id"]
        http_server.request("GET", f"/v1/jobs/{job_id}?wait=120")
        conn = http.client.HTTPConnection("127.0.0.1", http_server.port, timeout=30)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            assert response.status == 200
            lines = [
                json.loads(line)
                for line in response.read().decode("utf-8").splitlines()
                if line.strip()
            ]
        finally:
            conn.close()
        assert lines[0]["status"] == "queued"
        assert lines[-1]["status"] in ("completed", "failed")

    def test_queue_full_is_http_429_with_retry_after(self):
        executor = _BlockingExecutor()
        service = JobManager(
            ServiceConfig(port=0, run_config=BASE_RUN, max_queue=1),
            executor=executor,
        )
        try:
            with _ServerThread(manager=service) as server:
                for name in ("tof_3", "barenco_tof_3"):
                    status, _, _ = server.request(
                        "POST", "/v1/optimize", json.dumps({"qasm": qasm_for(name)})
                    )
                    assert status == 200
                    assert executor.started.acquire(timeout=10)
                status, _, _ = server.request(
                    "POST", "/v1/optimize", json.dumps({"qasm": qasm_for("mod5_4")})
                )
                assert status == 200  # fills the queue
                status, headers, payload = server.request(
                    "POST", "/v1/optimize", json.dumps({"qasm": qasm_for("tof_4")})
                )
                assert status == 429
                assert payload["error"] == "QueueFull"
                assert headers.get("retry-after") == "1"
                executor.release.set()
        finally:
            executor.release.set()
            service.close()

    def test_failed_job_polls_as_http_500(self):
        def always_crashing(payload: Dict[str, Any]) -> Dict[str, Any]:
            raise FaultInjected("injected worker crash")

        service = JobManager(
            ServiceConfig(port=0, run_config=BASE_RUN),
            executor=InlineExecutor(chunk_retries=0, runner=always_crashing),
        )
        try:
            with _ServerThread(manager=service) as server:
                _, _, submitted = server.request(
                    "POST", "/v1/optimize", json.dumps({"qasm": qasm_for("tof_3")})
                )
                status, _, record = server.request(
                    "GET", f"/v1/jobs/{submitted['job_id']}?wait=30"
                )
                assert status == 500
                assert record["status"] == "failed"
                assert record["error"]["type"] == "RetryExhausted"
        finally:
            service.close()
