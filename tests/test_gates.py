"""Tests for gate definitions: unitarity and numeric/symbolic agreement."""

import math

import numpy as np
import pytest

from repro.ir.gates import GATE_REGISTRY, get_gate, inverse_gate
from repro.ir.params import Angle
from repro.verifier.trig import AtomTrigBuilder, SymbolicContext

ALL_GATES = sorted(GATE_REGISTRY)
PARAM_VALUES = [0.7, -1.3, 2.1]


def random_angles(gate, rng):
    return [Angle.param(i) for i in range(gate.num_params)]


class TestRegistry:
    def test_lookup_by_alias(self):
        assert get_gate("CNOT").name == "cx"
        assert get_gate("toffoli").name == "ccx"
        assert get_gate("p").name == "u1"

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            get_gate("frobnicate")

    def test_inverse_pairs(self):
        assert inverse_gate(get_gate("t")).name == "tdg"
        assert inverse_gate(get_gate("s")).name == "sdg"
        assert inverse_gate(get_gate("h")).name == "h"
        assert inverse_gate(get_gate("rz")) is None

    def test_wrong_param_count_raises(self):
        with pytest.raises(ValueError):
            get_gate("rz").numeric([])
        with pytest.raises(ValueError):
            get_gate("h").numeric([1.0])

    def test_gate_equality_and_hash(self):
        assert get_gate("h") == get_gate("h")
        assert hash(get_gate("h")) == hash(get_gate("h"))
        assert get_gate("h") != get_gate("x")


class TestNumericMatrices:
    @pytest.mark.parametrize("name", ALL_GATES)
    def test_unitarity(self, name):
        gate = GATE_REGISTRY[name]
        params = PARAM_VALUES[: gate.num_params]
        matrix = gate.numeric(params)
        dim = 1 << gate.num_qubits
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)

    def test_cx_action(self):
        cx = get_gate("cx").numeric()
        state = np.zeros(4)
        state[2] = 1.0  # |10>: control set
        assert np.allclose(cx @ state, np.eye(4)[3])

    def test_rz_diagonal(self):
        rz = get_gate("rz").numeric([0.5])
        assert rz[0, 1] == 0 and rz[1, 0] == 0

    def test_u2_special_case_is_hadamard(self):
        u2 = get_gate("u2").numeric([0.0, math.pi])
        h = get_gate("h").numeric()
        assert np.allclose(u2, h, atol=1e-10)

    def test_u3_special_case_is_x_up_to_phase(self):
        u3 = get_gate("u3").numeric([math.pi, 0.0, math.pi])
        x = get_gate("x").numeric()
        ratio = u3[np.abs(x) > 0.5] / x[np.abs(x) > 0.5]
        assert np.allclose(ratio, ratio[0], atol=1e-10)
        assert np.isclose(abs(ratio[0]), 1.0)

    def test_rx90_matches_rx(self):
        assert np.allclose(
            get_gate("rx90").numeric(), get_gate("rx").numeric([math.pi / 2])
        )
        assert np.allclose(
            get_gate("rx90dg").numeric(), get_gate("rx").numeric([-math.pi / 2])
        )

    def test_ccx_is_permutation(self):
        ccx = get_gate("ccx").numeric()
        assert np.allclose(np.abs(ccx).sum(axis=0), np.ones(8))
        assert np.allclose(ccx[6, 7], 1) and np.allclose(ccx[7, 6], 1)


class TestSymbolicMatrices:
    @pytest.mark.parametrize("name", ALL_GATES)
    def test_symbolic_matches_numeric_on_random_parameters(self, name):
        """The symbolic matrix evaluated at concrete parameters must equal
        the numeric matrix — the core soundness link between the verifier's
        algebra and the simulator."""
        gate = GATE_REGISTRY[name]
        num_params = gate.num_params
        context = SymbolicContext(num_params, [2] * num_params)
        builder = AtomTrigBuilder(context)
        angles = [Angle.param(i) for i in range(num_params)]
        symbolic = gate.symbolic(builder, angles)

        values = PARAM_VALUES[:num_params]
        numeric = gate.numeric(values)
        atom_values = {i: values[i] / 2 for i in range(num_params)}
        dim = 1 << gate.num_qubits
        for row in range(dim):
            for col in range(dim):
                evaluated = symbolic[row, col].evaluate(atom_values)
                assert evaluated == pytest.approx(numeric[row, col], abs=1e-9)

    def test_symbolic_wrong_arity_raises(self):
        context = SymbolicContext(0, [])
        builder = AtomTrigBuilder(context)
        with pytest.raises(ValueError):
            get_gate("rz").symbolic(builder, [])
