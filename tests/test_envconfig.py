"""Unit tests for the centralized REPRO_* environment parsing.

Every knob has its edge cases pinned here: invalid and negative worker
counts fall back to serial with a warning, and ``REPRO_CACHE_DISABLE``
only disables on truthy values — ``0``/``false``/``off`` keep the cache
*enabled* (case-insensitively), which is what the flag's name promises.
"""

from __future__ import annotations

import warnings

import pytest

from repro import envconfig
from repro.envconfig import (
    CACHE_DIR_ENV_VAR,
    CACHE_DISABLE_ENV_VAR,
    SCALE_ENV_VAR,
    VERIFY_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
)
from repro.generator.cache import ECCCache
from repro.generator.parallel import resolve_workers
from repro.verifier.parallel import resolve_verify_workers


class TestWorkers:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert envconfig.env_workers() == 1
        assert envconfig.env_workers_optional() is None
        assert resolve_workers() == 1

    @pytest.mark.parametrize("raw,expected", [("1", 1), ("2", 2), ("8", 8)])
    def test_valid_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        assert envconfig.env_workers() == expected
        assert resolve_workers() == expected

    @pytest.mark.parametrize("raw", ["nope", "2.5", "two", "1e3"])
    def test_invalid_values_warn_and_mean_serial(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert envconfig.env_workers() == 1

    @pytest.mark.parametrize("raw", ["-1", "-16"])
    def test_negative_values_warn_and_mean_serial(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        with pytest.warns(RuntimeWarning, match="negative"):
            assert envconfig.env_workers() == 1

    def test_zero_means_serial_without_warning(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert envconfig.env_workers() == 1

    def test_whitespace_only_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "   ")
        assert envconfig.env_workers() == 1

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3


class TestVerifyWorkers:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(VERIFY_WORKERS_ENV_VAR, raising=False)
        assert envconfig.env_verify_workers() == 1
        assert envconfig.env_verify_workers_optional() is None
        assert resolve_verify_workers() == 1

    @pytest.mark.parametrize("raw,expected", [("1", 1), ("2", 2), ("8", 8)])
    def test_valid_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, raw)
        assert envconfig.env_verify_workers() == expected
        assert resolve_verify_workers() == expected

    @pytest.mark.parametrize("raw", ["nope", "2.5"])
    def test_invalid_values_warn_and_mean_serial(self, monkeypatch, raw):
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, raw)
        with pytest.warns(RuntimeWarning, match="non-integer.*REPRO_VERIFY_WORKERS"):
            assert envconfig.env_verify_workers() == 1

    @pytest.mark.parametrize("raw", ["-1", "-16"])
    def test_negative_values_warn_and_mean_serial(self, monkeypatch, raw):
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, raw)
        with pytest.warns(RuntimeWarning, match="negative.*REPRO_VERIFY_WORKERS"):
            assert envconfig.env_verify_workers() == 1

    def test_independent_of_gen_workers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        monkeypatch.delenv(VERIFY_WORKERS_ENV_VAR, raising=False)
        assert envconfig.env_workers() == 4
        assert envconfig.env_verify_workers() == 1
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, "3")
        assert envconfig.env_verify_workers() == 3

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, "7")
        assert resolve_verify_workers(3) == 3


class TestBatched:
    def test_unset_means_batched(self, monkeypatch):
        monkeypatch.delenv(envconfig.BATCHED_ENV_VAR, raising=False)
        assert envconfig.env_batched() is True
        assert envconfig.env_batched_optional() is None

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", "no"])
    def test_falsy_values_disable_batching(self, monkeypatch, raw):
        monkeypatch.setenv(envconfig.BATCHED_ENV_VAR, raw)
        assert envconfig.env_batched() is False
        assert envconfig.env_batched_optional() is False

    @pytest.mark.parametrize("raw", ["1", "true", "Yes", "ON"])
    def test_truthy_values_enable_batching(self, monkeypatch, raw):
        monkeypatch.setenv(envconfig.BATCHED_ENV_VAR, raw)
        assert envconfig.env_batched() is True
        assert envconfig.env_batched_optional() is True

    def test_unrecognized_value_warns_and_stays_batched(self, monkeypatch):
        monkeypatch.setenv(envconfig.BATCHED_ENV_VAR, "sometimes")
        with pytest.warns(RuntimeWarning, match="unrecognized boolean"):
            assert envconfig.env_batched() is True


class TestCacheDisable:
    @pytest.mark.parametrize("raw", ["0", "false", "False", "FALSE", "no", "off", ""])
    def test_falsy_values_keep_the_cache_enabled(self, monkeypatch, raw):
        monkeypatch.setenv(CACHE_DISABLE_ENV_VAR, raw)
        assert envconfig.env_cache_enabled() is True
        assert ECCCache().enabled is True

    @pytest.mark.parametrize("raw", ["1", "true", "True", "TRUE", "yes", "Yes", "on", "ON"])
    def test_truthy_values_disable(self, monkeypatch, raw):
        monkeypatch.setenv(CACHE_DISABLE_ENV_VAR, raw)
        assert envconfig.env_cache_enabled() is False
        assert ECCCache().enabled is False

    def test_unset_means_enabled(self, monkeypatch):
        monkeypatch.delenv(CACHE_DISABLE_ENV_VAR, raising=False)
        assert envconfig.env_cache_enabled() is True

    def test_unrecognized_value_warns_and_keeps_enabled(self, monkeypatch):
        monkeypatch.setenv(CACHE_DISABLE_ENV_VAR, "maybe")
        with pytest.warns(RuntimeWarning, match="unrecognized boolean"):
            assert envconfig.env_cache_enabled() is True


class TestChunkTimeout:
    def test_unset_means_the_default_deadline(self, monkeypatch):
        monkeypatch.delenv(envconfig.CHUNK_TIMEOUT_ENV_VAR, raising=False)
        assert envconfig.env_chunk_timeout() == envconfig.DEFAULT_CHUNK_TIMEOUT
        assert envconfig.env_chunk_timeout_optional() is None

    @pytest.mark.parametrize("raw,expected", [("5", 5.0), ("0.5", 0.5), ("120", 120.0)])
    def test_valid_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(envconfig.CHUNK_TIMEOUT_ENV_VAR, raw)
        assert envconfig.env_chunk_timeout() == expected
        assert envconfig.env_chunk_timeout_optional() == expected

    @pytest.mark.parametrize("raw", ["0", "-3", "-0.1"])
    def test_nonpositive_disables_the_deadline(self, monkeypatch, raw):
        monkeypatch.setenv(envconfig.CHUNK_TIMEOUT_ENV_VAR, raw)
        assert envconfig.env_chunk_timeout() is None
        # The optional reader keeps "explicitly disabled" distinct from
        # "unset" so config snapshots can round-trip the knob.
        assert envconfig.env_chunk_timeout_optional() == 0.0

    def test_invalid_values_warn_and_keep_the_default(self, monkeypatch):
        monkeypatch.setenv(envconfig.CHUNK_TIMEOUT_ENV_VAR, "forever")
        with pytest.warns(RuntimeWarning, match="non-numeric"):
            assert envconfig.env_chunk_timeout() == envconfig.DEFAULT_CHUNK_TIMEOUT


class TestChunkRetries:
    def test_unset_means_the_default_budget(self, monkeypatch):
        monkeypatch.delenv(envconfig.CHUNK_RETRIES_ENV_VAR, raising=False)
        assert envconfig.env_chunk_retries() == envconfig.DEFAULT_CHUNK_RETRIES
        assert envconfig.env_chunk_retries_optional() is None

    @pytest.mark.parametrize("raw,expected", [("0", 0), ("1", 1), ("5", 5)])
    def test_valid_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(envconfig.CHUNK_RETRIES_ENV_VAR, raw)
        assert envconfig.env_chunk_retries() == expected
        assert envconfig.env_chunk_retries_optional() == expected

    @pytest.mark.parametrize("raw,match", [("lots", "non-integer"), ("-2", "negative")])
    def test_invalid_values_warn_and_keep_the_default(self, monkeypatch, raw, match):
        monkeypatch.setenv(envconfig.CHUNK_RETRIES_ENV_VAR, raw)
        with pytest.warns(RuntimeWarning, match=match):
            assert envconfig.env_chunk_retries() == envconfig.DEFAULT_CHUNK_RETRIES


class TestResume:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(envconfig.RESUME_ENV_VAR, raising=False)
        assert envconfig.env_resume() is False
        assert envconfig.env_resume_optional() is None

    @pytest.mark.parametrize("raw", ["1", "true", "Yes", "ON"])
    def test_truthy_values_enable(self, monkeypatch, raw):
        monkeypatch.setenv(envconfig.RESUME_ENV_VAR, raw)
        assert envconfig.env_resume() is True
        assert envconfig.env_resume_optional() is True

    @pytest.mark.parametrize("raw", ["0", "false", "off", ""])
    def test_falsy_values_stay_off(self, monkeypatch, raw):
        monkeypatch.setenv(envconfig.RESUME_ENV_VAR, raw)
        assert envconfig.env_resume() is False
        assert envconfig.env_resume_optional() is False


class TestFaultsEnv:
    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(envconfig.FAULTS_ENV_VAR, raising=False)
        assert envconfig.env_faults() == ""

    def test_value_is_stripped_not_parsed(self, monkeypatch):
        # Parsing (and strict validation) happens in repro.faults; the env
        # layer only hands the raw plan text through.
        monkeypatch.setenv(envconfig.FAULTS_ENV_VAR, "  kill_worker:gen:round2  ")
        assert envconfig.env_faults() == "kill_worker:gen:round2"


class TestCacheDirAndScale:
    def test_cache_dir_default_and_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert envconfig.env_cache_dir() == envconfig.DEFAULT_CACHE_DIR
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert envconfig.env_cache_dir() == str(tmp_path)
        assert ECCCache().directory == tmp_path

    def test_scale_normalizes_case_and_defaults(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert envconfig.env_scale() == "quick"
        monkeypatch.setenv(SCALE_ENV_VAR, "  MEDIUM ")
        assert envconfig.env_scale() == "medium"
        monkeypatch.setenv(SCALE_ENV_VAR, "")
        assert envconfig.env_scale() == "quick"


class TestMicrobench:
    def test_check_only_spellings(self, monkeypatch):
        monkeypatch.delenv(envconfig.MICROBENCH_ENV_VAR, raising=False)
        assert envconfig.env_microbench_check_only() is False
        for raw in ("check", "CHECK", " Check-Only ", "check-only"):
            monkeypatch.setenv(envconfig.MICROBENCH_ENV_VAR, raw)
            assert envconfig.env_microbench_check_only() is True
        for raw in ("", "1", "full", "yes"):
            monkeypatch.setenv(envconfig.MICROBENCH_ENV_VAR, raw)
            assert envconfig.env_microbench_check_only() is False

    def test_json_path_default_and_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(envconfig.MICROBENCH_JSON_ENV_VAR, raising=False)
        assert envconfig.env_microbench_json(default="x.json") == "x.json"
        monkeypatch.setenv(envconfig.MICROBENCH_JSON_ENV_VAR, "")
        assert envconfig.env_microbench_json(default="x.json") == "x.json"
        target = str(tmp_path / "out.json")
        monkeypatch.setenv(envconfig.MICROBENCH_JSON_ENV_VAR, target)
        assert envconfig.env_microbench_json(default="x.json") == target


class TestServiceKnobs:
    def test_port_default_valid_and_ephemeral(self, monkeypatch):
        monkeypatch.delenv(envconfig.SERVICE_PORT_ENV_VAR, raising=False)
        assert envconfig.env_service_port() == envconfig.DEFAULT_SERVICE_PORT
        monkeypatch.setenv(envconfig.SERVICE_PORT_ENV_VAR, " 9000 ")
        assert envconfig.env_service_port() == 9000
        monkeypatch.setenv(envconfig.SERVICE_PORT_ENV_VAR, "0")
        assert envconfig.env_service_port() == 0

    def test_port_invalid_and_out_of_range_warn_to_default(self, monkeypatch):
        for raw in ("http", "-1", "70000"):
            monkeypatch.setenv(envconfig.SERVICE_PORT_ENV_VAR, raw)
            with pytest.warns(RuntimeWarning):
                assert envconfig.env_service_port() == envconfig.DEFAULT_SERVICE_PORT

    def test_workers_default_valid_and_invalid(self, monkeypatch):
        monkeypatch.delenv(envconfig.SERVICE_WORKERS_ENV_VAR, raising=False)
        assert envconfig.env_service_workers() == 1
        monkeypatch.setenv(envconfig.SERVICE_WORKERS_ENV_VAR, "4")
        assert envconfig.env_service_workers() == 4
        monkeypatch.setenv(envconfig.SERVICE_WORKERS_ENV_VAR, "many")
        with pytest.warns(RuntimeWarning):
            assert envconfig.env_service_workers() == 1
        monkeypatch.setenv(envconfig.SERVICE_WORKERS_ENV_VAR, "-3")
        with pytest.warns(RuntimeWarning):
            assert envconfig.env_service_workers() == 1

    def test_batch_window_default_valid_zero_and_invalid(self, monkeypatch):
        monkeypatch.delenv(envconfig.SERVICE_BATCH_WINDOW_ENV_VAR, raising=False)
        assert (
            envconfig.env_service_batch_window_ms()
            == envconfig.DEFAULT_SERVICE_BATCH_WINDOW_MS
        )
        monkeypatch.setenv(envconfig.SERVICE_BATCH_WINDOW_ENV_VAR, "12.5")
        assert envconfig.env_service_batch_window_ms() == 12.5
        monkeypatch.setenv(envconfig.SERVICE_BATCH_WINDOW_ENV_VAR, "0")
        assert envconfig.env_service_batch_window_ms() == 0.0
        for raw in ("soon", "-5"):
            monkeypatch.setenv(envconfig.SERVICE_BATCH_WINDOW_ENV_VAR, raw)
            with pytest.warns(RuntimeWarning):
                assert (
                    envconfig.env_service_batch_window_ms()
                    == envconfig.DEFAULT_SERVICE_BATCH_WINDOW_MS
                )

    def test_max_queue_default_valid_and_invalid(self, monkeypatch):
        monkeypatch.delenv(envconfig.SERVICE_MAX_QUEUE_ENV_VAR, raising=False)
        assert envconfig.env_service_max_queue() == envconfig.DEFAULT_SERVICE_MAX_QUEUE
        monkeypatch.setenv(envconfig.SERVICE_MAX_QUEUE_ENV_VAR, "8")
        assert envconfig.env_service_max_queue() == 8
        for raw in ("lots", "0", "-2"):
            monkeypatch.setenv(envconfig.SERVICE_MAX_QUEUE_ENV_VAR, raw)
            with pytest.warns(RuntimeWarning):
                assert (
                    envconfig.env_service_max_queue()
                    == envconfig.DEFAULT_SERVICE_MAX_QUEUE
                )

    def test_service_config_snapshots_env(self, monkeypatch):
        from repro.service import ServiceConfig

        monkeypatch.setenv(envconfig.SERVICE_PORT_ENV_VAR, "9100")
        monkeypatch.setenv(envconfig.SERVICE_WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(envconfig.SERVICE_BATCH_WINDOW_ENV_VAR, "40")
        monkeypatch.setenv(envconfig.SERVICE_MAX_QUEUE_ENV_VAR, "9")
        config = ServiceConfig.from_env()
        assert (config.port, config.workers, config.batch_window_ms, config.max_queue) == (
            9100,
            3,
            40.0,
            9,
        )
        assert config.pooled and config.executor_slots == 3
        assert config.run_config.generation.resume is True  # service default
        overridden = ServiceConfig.from_env(port=0, workers=1)
        assert overridden.port == 0 and not overridden.pooled
        assert overridden.executor_slots == 2


class TestSearchKnobs:
    def test_search_workers_default_valid_and_invalid(self, monkeypatch):
        monkeypatch.delenv(envconfig.SEARCH_WORKERS_ENV_VAR, raising=False)
        assert envconfig.env_search_workers() == 1
        assert envconfig.env_search_workers_optional() is None
        monkeypatch.setenv(envconfig.SEARCH_WORKERS_ENV_VAR, " 4 ")
        assert envconfig.env_search_workers() == 4
        assert envconfig.env_search_workers_optional() == 4
        # Invalid and negative values warn and mean serial — the same
        # convention as every other worker knob.
        for raw in ("many", "-2", "2.5"):
            monkeypatch.setenv(envconfig.SEARCH_WORKERS_ENV_VAR, raw)
            with pytest.warns(RuntimeWarning):
                assert envconfig.env_search_workers() == 1

    def test_portfolio_roster_parsing(self, monkeypatch):
        monkeypatch.delenv(envconfig.PORTFOLIO_ENV_VAR, raising=False)
        assert envconfig.env_portfolio_optional() is None
        monkeypatch.setenv(
            envconfig.PORTFOLIO_ENV_VAR, " Greedy, beam ,,parallel-backtracking "
        )
        assert envconfig.env_portfolio_optional() == (
            "greedy",
            "beam",
            "parallel-backtracking",
        )

    def test_empty_portfolio_warns_and_means_default(self, monkeypatch):
        for raw in ("", " , ,"):
            monkeypatch.setenv(envconfig.PORTFOLIO_ENV_VAR, raw)
            with pytest.warns(RuntimeWarning, match="default portfolio"):
                assert envconfig.env_portfolio_optional() is None

    def test_run_config_snapshots_search_knobs(self, monkeypatch):
        from repro.api import RunConfig

        monkeypatch.setenv(envconfig.SEARCH_WORKERS_ENV_VAR, "2")
        monkeypatch.setenv(envconfig.PORTFOLIO_ENV_VAR, "greedy,beam")
        config = RunConfig.from_env()
        assert config.search.search_workers == 2
        assert config.search.portfolio == ("greedy", "beam")
        options = config.search.options_for
        assert options("parallel-backtracking")["workers"] == 2
        portfolio_options = options("portfolio")
        assert portfolio_options["racers"] == ("greedy", "beam")
        assert portfolio_options["workers"] == 2
        assert portfolio_options["early_cancel"] is True
