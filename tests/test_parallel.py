"""Tests for sharded multiprocess RepGen (repro.generator.parallel).

The load-bearing property is *determinism*: a multi-worker run must produce
an ECC set that is byte-identical (via ``ECCSet.to_json``) to the serial
run's, because workers only compute fingerprint hash keys while all ECC
inserts and verifier calls happen in the parent in enumeration order.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import RetryExhausted
from repro.generator import RepGen
from repro.generator.parallel import (
    WORKERS_ENV_VAR,
    ParallelFingerprintPool,
    resolve_workers,
)
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate, get_gate
from repro.ir.gatesets import NAM
from repro.semantics.fingerprint import FingerprintContext


def _generate(workers):
    return RepGen(NAM, num_qubits=2, num_params=2, workers=workers).generate(2)


@pytest.fixture(scope="module")
def serial_result():
    return _generate(workers=1)


class TestParallelEqualsSerial:
    def test_two_workers_byte_identical(self, serial_result):
        parallel = _generate(workers=2)
        assert parallel.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_four_workers_byte_identical(self, serial_result):
        parallel = _generate(workers=4)
        assert parallel.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_representatives_and_stats_match(self, serial_result):
        parallel = _generate(workers=2)
        assert [c.sequence_key() for c in parallel.representatives] == [
            c.sequence_key() for c in serial_result.representatives
        ]
        assert (
            parallel.stats.circuits_considered
            == serial_result.stats.circuits_considered
        )
        assert parallel.stats.num_eccs == serial_result.stats.num_eccs

    def test_parallel_counters_surfaced(self):
        result = _generate(workers=2)
        assert result.stats.perf.get("repgen.parallel.pools") == 1
        assert result.stats.perf.get("repgen.parallel.workers") == 2
        candidates = result.stats.perf.get("repgen.parallel.candidates", 0)
        assert candidates > 0
        # Worker states are copied back into the parent's fingerprint cache
        # so the verifier's phase screen reuses them during the inserts.
        assert result.stats.perf.get("repgen.parallel.states_seeded") == candidates

    def test_pool_failure_falls_back_to_serial(self, serial_result, monkeypatch):
        # A PoolError is what escapes the pool when a chunk exhausted its
        # retry budget (RetryExhausted is a PoolError); the round — not the
        # run — then degrades to serial with identical output.
        def explode(self, jobs, *, round_index=None):
            raise RetryExhausted("injected worker failure")

        monkeypatch.setattr(ParallelFingerprintPool, "hash_keys", explode)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = _generate(workers=2)
        assert result.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_non_pool_errors_surface(self, monkeypatch):
        # Programming bugs must not silently degrade to serial: only
        # PoolError (pool infrastructure) triggers the fallback.
        def explode(self, jobs, *, round_index=None):
            raise TypeError("a bug, not an infrastructure failure")

        monkeypatch.setattr(ParallelFingerprintPool, "hash_keys", explode)
        with pytest.raises(TypeError, match="a bug"):
            _generate(workers=2)

    def test_pool_setup_failure_falls_back_to_serial(self, serial_result, monkeypatch):
        def explode(self, spec, workers):
            raise OSError("injected fork failure")

        monkeypatch.setattr(ParallelFingerprintPool, "__init__", explode)
        with pytest.warns(RuntimeWarning, match="generating serially"):
            result = _generate(workers=2)
        assert result.ecc_set.to_json() == serial_result.ecc_set.to_json()


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert resolve_workers(3) == 3

    def test_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert resolve_workers(None) == 4
        assert RepGen(NAM, num_qubits=2).workers == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_garbage_env_var_warns_and_runs_serially(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert resolve_workers(None) == 1

    def test_nonpositive_values_clamp_to_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1


class TestPicklability:
    def test_fingerprint_context_spec_roundtrip(self):
        context = FingerprintContext(3, 2, seed=7)
        rebuilt = FingerprintContext.from_spec(context.spec())
        circuit = Circuit(3).h(0).cx(0, 1).t(2)
        assert rebuilt.hash_key(circuit) == context.hash_key(circuit)
        assert rebuilt.param_values == context.param_values

    def test_fingerprint_context_pickles(self):
        context = FingerprintContext(2, 2, seed=11)
        rebuilt = pickle.loads(pickle.dumps(context))
        circuit = Circuit(2).h(0).cx(0, 1)
        assert rebuilt.hash_key(circuit) == context.hash_key(circuit)

    def test_registered_gates_pickle_by_reference(self):
        gate = get_gate("h")
        assert pickle.loads(pickle.dumps(gate)) is gate

    def test_circuits_with_constant_gates_pickle(self):
        # Constant gates memoize their matrix through a closure, which value
        # pickling cannot handle; the registry-reference __reduce__ makes
        # whole circuits (what the worker pool ships) picklable anyway.
        circuit = Circuit(2).h(0).cx(0, 1).t(1)
        restored = pickle.loads(pickle.dumps(circuit))
        assert restored == circuit

    def test_unregistered_gate_pickle_raises_clear_error(self):
        import numpy as np

        rogue = Gate(
            "h",  # shadows a registry name but is a different instance
            1,
            0,
            lambda _params: np.eye(2, dtype=complex),
            lambda _builder, _angles: None,
        )
        with pytest.raises(pickle.PicklingError, match="registered"):
            pickle.dumps(rogue)
