"""Tests for the perf instrumentation subsystem and its surfacing in results."""

import time

import pytest

from repro.ir import Circuit
from repro.perf import NULL_RECORDER, PerfRecorder, get_recorder, set_recorder
from repro.perf.instrument import format_snapshot


class TestPerfRecorder:
    def test_counters_accumulate(self):
        perf = PerfRecorder()
        perf.count("a")
        perf.count("a", 2)
        assert perf.value("a") == 3
        assert perf.value("missing") == 0

    def test_timer_accumulates(self):
        perf = PerfRecorder()
        with perf.timer("t"):
            time.sleep(0.001)
        with perf.timer("t"):
            pass
        assert perf.timers["t"] > 0.0

    def test_hit_rate(self):
        perf = PerfRecorder()
        perf.count("cache.hits", 3)
        perf.count("cache.misses", 1)
        assert perf.hit_rate("cache.hits", "cache.misses") == pytest.approx(0.75)
        assert perf.hit_rate("no.hits", "no.misses") == 0.0

    def test_snapshot_includes_derived_hit_rates(self):
        perf = PerfRecorder()
        perf.count("x.hits", 1)
        perf.count("x.misses", 1)
        perf.add_time("phase", 0.5)
        snap = perf.snapshot()
        assert snap["x.hit_rate"] == pytest.approx(0.5)
        assert snap["phase.seconds"] == pytest.approx(0.5)
        assert "x.hits" in snap

    def test_merge(self):
        a = PerfRecorder()
        b = PerfRecorder()
        a.count("n", 1)
        b.count("n", 2)
        b.add_time("t", 1.0)
        a.merge(b)
        assert a.value("n") == 3
        assert a.timers["t"] == pytest.approx(1.0)

    def test_disabled_recorder_is_inert(self):
        perf = PerfRecorder(enabled=False)
        perf.count("a")
        with perf.timer("t"):
            pass
        assert perf.counters == {}
        assert perf.timers == {}

    def test_null_recorder_is_disabled(self):
        assert not NULL_RECORDER.enabled

    def test_global_recorder_roundtrip(self):
        try:
            mine = PerfRecorder()
            assert set_recorder(mine) is mine
            assert get_recorder() is mine
        finally:
            set_recorder(None)
        assert get_recorder() is NULL_RECORDER

    def test_format_snapshot(self):
        perf = PerfRecorder()
        perf.count("calls", 2)
        text = format_snapshot(perf.snapshot())
        assert "calls = 2" in text


class TestPerfSurfacing:
    def test_optimizer_result_carries_perf(self, nam_transformations_small):
        from repro.optimizer import BacktrackingOptimizer

        circuit = Circuit(2).h(0).h(0).cx(0, 1)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(circuit, max_iterations=5, timeout_seconds=10)
        assert result.perf.get("search.matchers_built", 0) >= 1
        # The gate-multiset index must have skipped at least one pattern
        # (the ECC set contains x-gate patterns, the circuit has no x).
        assert result.perf.get("search.transformations_skipped", 0) >= 1

    def test_generator_stats_carry_perf(self):
        from repro.generator import RepGen
        from repro.ir.gatesets import GateSet

        custom = GateSet("perf_probe_hs", ["h", "s"], num_params=0)
        generator = RepGen(custom, num_qubits=1, num_params=0)
        result = generator.generate(2)
        perf = result.stats.perf
        assert perf.get("fingerprint.incremental_evals", 0) > 0
        assert "fingerprint.state_cache.hit_rate" in perf
        assert perf.get("verifier.matrix_cache.misses", 0) > 0
        assert result.stats.as_dict()["perf"] == perf
