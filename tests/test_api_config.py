"""Tests for the frozen RunConfig/GenerationConfig/SearchConfig layer."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import GenerationConfig, RunConfig, SearchConfig
from repro.envconfig import (
    CACHE_DIR_ENV_VAR,
    CACHE_DISABLE_ENV_VAR,
    SCALE_ENV_VAR,
    VERIFY_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
)


class TestFrozen:
    def test_all_layers_are_frozen(self):
        config = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.gate_set = "ibm"
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.generation.n = 5
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.search.gamma = 2.0


class TestFromEnv:
    def test_snapshots_every_knob(self, monkeypatch, tmp_path):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        monkeypatch.setenv(CACHE_DISABLE_ENV_VAR, "false")
        monkeypatch.setenv(SCALE_ENV_VAR, "medium")
        monkeypatch.setenv("REPRO_BATCHED", "0")
        config = RunConfig.from_env()
        assert config.generation.workers == 4
        assert config.generation.verify_workers == 3
        assert config.generation.cache_dir == str(tmp_path)
        assert config.generation.cache_enabled is True
        assert config.scale == "medium"
        assert config.batched is False

    def test_batched_unset_stays_deferred(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCHED", raising=False)
        config = RunConfig.from_env()
        assert config.batched is None
        assert config.with_overrides(batched=True).batched is True

    def test_verify_workers_unset_stays_deferred(self, monkeypatch):
        monkeypatch.delenv(VERIFY_WORKERS_ENV_VAR, raising=False)
        assert RunConfig.from_env().generation.verify_workers is None

    def test_verify_workers_flat_override_routes_to_generation(self):
        config = RunConfig().with_overrides(verify_workers=2)
        assert config.generation.verify_workers == 2

    def test_disable_flag_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv(CACHE_DISABLE_ENV_VAR, "0")
        assert RunConfig.from_env().generation.cache_enabled is True
        monkeypatch.setenv(CACHE_DISABLE_ENV_VAR, "1")
        assert RunConfig.from_env().generation.cache_enabled is False

    def test_invalid_workers_warn_and_mean_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "-3")
        with pytest.warns(RuntimeWarning, match="negative"):
            config = RunConfig.from_env()
        assert config.generation.workers == 1

    def test_overrides_win_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        config = RunConfig.from_env(workers=2, gate_set="ibm")
        assert config.generation.workers == 2
        assert config.gate_set == "ibm"


class TestOverrides:
    def test_flat_routing_to_nested_layers(self):
        config = RunConfig().with_overrides(
            n=2, q=2, strategy="beam", beam_width=8, backend="numpy"
        )
        assert config.generation.n == 2
        assert config.generation.q == 2
        assert config.search.strategy == "beam"
        assert config.search.beam_width == 8
        assert config.backend == "numpy"

    def test_nested_mappings_and_instances(self):
        config = RunConfig().with_overrides(
            generation={"n": 1}, search=SearchConfig(strategy="greedy")
        )
        assert config.generation.n == 1
        assert config.search.strategy == "greedy"
        replaced = config.with_overrides(generation=GenerationConfig(n=4))
        assert replaced.generation.n == 4

    def test_unknown_field_raises(self):
        with pytest.raises(TypeError, match="unknown configuration field"):
            RunConfig().with_overrides(frobnicate=1)

    def test_original_is_untouched(self):
        base = RunConfig()
        base.with_overrides(n=7)
        assert base.generation.n == 3


class TestSources:
    def test_precedence_env_file_kwargs(self, monkeypatch, tmp_path):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        monkeypatch.setenv(SCALE_ENV_VAR, "quick")
        config_file = tmp_path / "config.json"
        config_file.write_text(
            json.dumps(
                {
                    "gate_set": "ibm",
                    "generation": {"workers": 2, "n": 2},
                    "search": {"strategy": "beam"},
                }
            )
        )
        config = RunConfig.from_sources(file=config_file, gate_set="rigetti")
        # env set workers=4, the file overrode it to 2, kwargs overrode
        # the file's gate set.
        assert config.generation.workers == 2
        assert config.generation.n == 2
        assert config.search.strategy == "beam"
        assert config.gate_set == "rigetti"
        assert config.scale == "quick"

    def test_from_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            RunConfig.from_file(path)


class TestStrategyOptions:
    def test_options_per_builtin_strategy(self):
        search = SearchConfig(gamma=1.5, beam_width=9, queue_capacity=10)
        assert search.options_for("backtracking")["gamma"] == 1.5
        assert search.options_for("backtracking")["queue_capacity"] == 10
        assert "gamma" not in search.options_for("beam")
        assert search.options_for("beam")["beam_width"] == 9
        assert set(search.options_for("greedy")) == {
            "max_matches_per_transformation"
        }

    def test_strategy_options_extend_and_override(self):
        search = SearchConfig(strategy="beam", strategy_options={"beam_width": 3})
        assert search.options_for()["beam_width"] == 3

    def test_as_dict_is_json_friendly(self):
        payload = RunConfig(gate_set="nam").as_dict()
        json.dumps(payload)
        assert payload["gate_set"] == "nam"
        assert payload["generation"]["n"] == 3
