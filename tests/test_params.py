"""Tests for exact angles and the parameter-expression specification Sigma."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.params import Angle, ParamSpec, angle_from_float


class TestAngle:
    def test_pi_constructor(self):
        assert Angle.pi(Fraction(1, 2)).to_float() == pytest.approx(math.pi / 2)

    def test_param_constructor(self):
        angle = Angle.param(1, 2)
        assert angle.to_float({1: 0.3}) == pytest.approx(0.6)

    def test_is_constant_and_symbolic(self):
        assert Angle.pi(1).is_constant()
        assert Angle.param(0).is_symbolic()
        assert not Angle.param(0).is_constant()

    def test_zero(self):
        assert Angle.zero().is_zero()
        assert not Angle.pi(1).is_zero()

    def test_addition_and_negation(self):
        total = Angle.pi(Fraction(1, 4)) + Angle.param(0)
        assert total.pi_multiple == Fraction(1, 4)
        assert (-total).coefficients[0] == -1

    def test_zero_coefficients_are_dropped(self):
        angle = Angle.param(0) - Angle.param(0)
        assert angle.is_constant()
        assert not angle.coefficients

    def test_scale(self):
        assert Angle.param(0).scale(Fraction(1, 2)).coefficients[0] == Fraction(1, 2)
        assert (2 * Angle.pi(1)).pi_multiple == 2

    def test_normalized_2pi(self):
        assert Angle.pi(Fraction(9, 4)).normalized_2pi().pi_multiple == Fraction(1, 4)
        assert Angle.pi(-2).normalized_2pi().pi_multiple == 0

    def test_substitute(self):
        expr = Angle.param(0, 2) + Angle.pi(Fraction(1, 2))
        result = expr.substitute({0: Angle.pi(Fraction(1, 4))})
        assert result.is_constant()
        assert result.pi_multiple == Fraction(1)

    def test_substitute_partial(self):
        expr = Angle.param(0) + Angle.param(1)
        result = expr.substitute({0: Angle.pi(1)})
        assert result.coefficients == {1: Fraction(1)}
        assert result.pi_multiple == 1

    def test_equality_and_hash(self):
        assert Angle.pi(1) == Angle.pi(1)
        assert hash(Angle.param(0)) == hash(Angle.param(0))
        assert Angle.pi(1) != Angle.param(0)

    def test_str(self):
        assert str(Angle.zero()) == "0"
        assert "pi" in str(Angle.pi(1))
        assert "p0" in str(Angle.param(0))

    @settings(max_examples=30, deadline=None)
    @given(
        st.fractions(min_value=-4, max_value=4, max_denominator=8),
        st.fractions(min_value=-4, max_value=4, max_denominator=8),
        st.floats(-3, 3, allow_nan=False),
    )
    def test_to_float_linear(self, a, b, value):
        angle = Angle(a, {0: b})
        expected = float(a) * math.pi + float(b) * value
        assert angle.to_float([value]) == pytest.approx(expected)


class TestAngleFromFloat:
    def test_snaps_pi_over_4(self):
        assert angle_from_float(math.pi / 4).pi_multiple == Fraction(1, 4)

    def test_snaps_negative(self):
        assert angle_from_float(-math.pi / 2).pi_multiple == Fraction(-1, 2)

    def test_rejects_irrational_fraction_of_pi(self):
        with pytest.raises(ValueError):
            angle_from_float(1.0)

    @pytest.mark.parametrize(
        "value", [float("inf"), float("-inf"), float("nan")]
    )
    def test_rejects_non_finite_values_with_value_error(self, value):
        # round() would otherwise raise OverflowError (inf) or a confusing
        # "cannot convert float NaN to integer" instead of ValueError.
        with pytest.raises(ValueError, match="finite"):
            angle_from_float(value)

    def test_denominator_64_grid_snaps_exactly_in_both_signs(self):
        for k in range(-128, 129):
            assert angle_from_float(k * math.pi / 64).pi_multiple == Fraction(k, 64)

    def test_near_miss_at_denominator_64_is_rejected(self):
        with pytest.raises(ValueError):
            angle_from_float(math.pi / 64 + 1e-5)


class TestParamSpec:
    def test_expression_count_for_two_params(self):
        # p0, p1, 2p0, 2p1, p0+p1 -> 5 expressions (matches the Nam setup).
        spec = ParamSpec(2)
        assert len(spec.expressions()) == 5

    def test_expression_count_for_four_params(self):
        # 4 + 4 + C(4,2) = 14 expressions (IBM setup).
        spec = ParamSpec(4)
        assert len(spec.expressions()) == 14

    def test_single_use_filtering(self):
        spec = ParamSpec(2)
        remaining = spec.expressions_avoiding({0})
        assert all(0 not in expr.params_used() for expr in remaining)
        assert len(remaining) == 2  # p1 and 2 p1

    def test_single_use_disabled(self):
        spec = ParamSpec(2, single_use=False)
        assert len(spec.expressions_avoiding({0})) == len(spec.expressions())

    def test_no_double_no_sum(self):
        spec = ParamSpec(3, allow_double=False, allow_sum=False)
        assert len(spec.expressions()) == 3

    def test_zero_params(self):
        assert ParamSpec(0).expressions() == []

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            ParamSpec(-1)
