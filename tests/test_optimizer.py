"""Tests for transformations, the pattern matcher and the backtracking search."""

from fractions import Fraction

import pytest

from repro.ir import Circuit
from repro.ir.params import Angle
from repro.optimizer import (
    BacktrackingOptimizer,
    DepthCost,
    GateCountCost,
    TCountCost,
    Transformation,
    TwoQubitCountCost,
    greedy_optimize,
    transformations_from_ecc_set,
)
from repro.optimizer.matcher import PatternMatcher
from repro.semantics.simulator import circuits_equivalent_numeric


class TestCostModels:
    def test_gate_count(self):
        assert GateCountCost()(Circuit(2).h(0).cx(0, 1)) == 2

    def test_two_qubit_count(self):
        assert TwoQubitCountCost()(Circuit(2).h(0).cx(0, 1).cz(1, 0)) == 2

    def test_t_count_counts_t_like_rotations(self):
        circuit = (
            Circuit(1).t(0).tdg(0).s(0).rz(0, Angle.pi(Fraction(1, 4))).rz(0, Angle.pi(1))
        )
        assert TCountCost()(circuit) == 3

    def test_depth_cost(self):
        assert DepthCost()(Circuit(2).h(0).h(1).cx(0, 1)) == 2


class TestTransformations:
    def test_extraction_counts(self, nam_ecc_q2_n2):
        transformations = transformations_from_ecc_set(nam_ecc_q2_n2)
        # Every non-representative circuit contributes at most two directions,
        # minus the ones whose source would be the empty circuit.
        assert transformations
        assert all(len(t.source) > 0 for t in transformations)

    def test_cost_increasing_can_be_excluded(self, nam_ecc_q2_n2):
        all_xf = transformations_from_ecc_set(nam_ecc_q2_n2)
        decreasing = transformations_from_ecc_set(
            nam_ecc_q2_n2, include_cost_increasing=False
        )
        assert len(decreasing) <= len(all_xf)
        assert all(t.gate_delta <= 0 for t in decreasing)

    def test_gate_delta(self):
        t = Transformation(Circuit(1).h(0).h(0), Circuit(1))
        assert t.gate_delta == -2


class TestPatternMatcher:
    def test_simple_match_and_apply(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1)
        transformation = Transformation(Circuit(1).h(0).h(0), Circuit(1))
        matcher = PatternMatcher(circuit)
        results = matcher.apply_all(transformation)
        assert len(results) == 1
        assert results[0].gate_count == 1
        assert circuits_equivalent_numeric(circuit, results[0])

    def test_match_respects_wire_order(self):
        # Pattern H X must not match a circuit containing X H.
        circuit = Circuit(1).x(0).h(0)
        transformation = Transformation(Circuit(1).h(0).x(0), Circuit(1).z(0))
        assert PatternMatcher(circuit).find_matches(transformation.source) == []

    def test_match_rejects_non_convex(self):
        # H ... H with an X in between on the same wire is not a subcircuit.
        circuit = Circuit(1).h(0).x(0).h(0)
        matches = PatternMatcher(circuit).find_matches(Circuit(1).h(0).h(0))
        assert matches == []

    def test_match_on_different_qubits(self):
        circuit = Circuit(3).h(2).h(2)
        transformation = Transformation(Circuit(1).h(0).h(0), Circuit(1))
        results = PatternMatcher(circuit).apply_all(transformation)
        assert len(results) == 1
        assert results[0].gate_count == 0

    def test_qubit_mapping_respects_operand_roles(self):
        # Pattern cx(0,1) must map control to control.
        circuit = Circuit(2).cx(1, 0)
        matches = PatternMatcher(circuit).find_matches(Circuit(2).cx(0, 1))
        assert len(matches) == 1
        assert matches[0].qubit_map == {0: 1, 1: 0}

    def test_parameter_unification_simple(self):
        circuit = Circuit(1).rz(0, Angle.pi(Fraction(1, 4))).rz(0, Angle.pi(Fraction(1, 2)))
        pattern = (
            Circuit(1, num_params=2).rz(0, Angle.param(0)).rz(0, Angle.param(1))
        )
        rewrite = Circuit(1, num_params=2).rz(0, Angle.param(0) + Angle.param(1))
        transformation = Transformation(pattern, rewrite)
        results = PatternMatcher(circuit).apply_all(transformation)
        assert len(results) == 1
        merged = results[0]
        assert merged.gate_count == 1
        assert merged[0].params[0] == Angle.pi(Fraction(3, 4))
        assert circuits_equivalent_numeric(circuit, merged)

    def test_parameter_unification_underdetermined(self):
        # Source rz(p0+p1) matched against a concrete rz: p1 defaults to 0.
        circuit = Circuit(1).rz(0, Angle.pi(Fraction(1, 2)))
        pattern = Circuit(1, num_params=2).rz(0, Angle.param(0) + Angle.param(1))
        rewrite = Circuit(1, num_params=2).rz(0, Angle.param(0)).rz(0, Angle.param(1))
        results = PatternMatcher(circuit).apply_all(Transformation(pattern, rewrite))
        assert results
        assert circuits_equivalent_numeric(circuit, results[0])

    def test_parameter_mismatch_rejected(self):
        # Pattern rz(2 p0) cannot match rz(pi/4) with p0 = pi/8?  It can
        # (p0 = pi/8), but pattern rz(p0) rz(p0) requires equal angles.
        circuit = Circuit(1).rz(0, Angle.pi(Fraction(1, 4))).rz(0, Angle.pi(Fraction(1, 2)))
        pattern = Circuit(1, num_params=1).rz(0, Angle.param(0)).rz(0, Angle.param(0))
        matches = PatternMatcher(circuit).find_matches(pattern)
        assert matches == []

    def test_max_matches_limit(self):
        circuit = Circuit(1)
        for _ in range(6):
            circuit.h(0)
        matcher = PatternMatcher(circuit)
        limited = matcher.find_matches(Circuit(1).h(0).h(0), max_matches=2)
        assert len(limited) == 2

    def test_empty_pattern_has_no_matches(self):
        assert PatternMatcher(Circuit(1).h(0)).find_matches(Circuit(1)) == []


class TestBacktrackingSearch:
    def test_hadamard_cnot_example(self, nam_transformations_small):
        """Figure 3a: H H CX H H reduces to a flipped CNOT."""
        circuit = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(circuit, max_iterations=60)
        assert result.final_cost == 1
        assert circuits_equivalent_numeric(circuit, result.circuit)
        assert result.initial_cost == 5
        assert result.reduction == pytest.approx(0.8)

    def test_greedy_never_increases_cost(self, nam_transformations_small):
        circuit = Circuit(2).h(0).x(0).h(0).cx(0, 1).cx(0, 1)
        result = greedy_optimize(circuit, nam_transformations_small, max_iterations=40)
        assert result.final_cost <= result.initial_cost
        assert circuits_equivalent_numeric(circuit, result.circuit)

    def test_optimized_circuit_is_always_equivalent(self, nam_transformations_small):
        circuit = (
            Circuit(2)
            .h(0)
            .t(0)
            .cx(0, 1)
            .rz(1, Angle.pi(Fraction(1, 2)))
            .cx(0, 1)
            .h(0)
            .x(1)
            .x(1)
        )
        from repro.preprocess import clifford_t_to_nam

        nam_circuit = clifford_t_to_nam(circuit)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(nam_circuit, max_iterations=40)
        assert circuits_equivalent_numeric(nam_circuit, result.circuit)
        assert result.final_cost <= result.initial_cost

    def test_iteration_budget_respected(self, nam_transformations_small):
        circuit = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(circuit, max_iterations=1)
        assert result.iterations <= 1

    def test_timeout_respected(self, nam_transformations_small):
        circuit = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(circuit, timeout_seconds=0.0)
        assert result.timed_out or result.iterations <= 1

    def test_tiny_timeout_reports_flag_elapsed_and_best_so_far(
        self, nam_transformations_small
    ):
        """A timed-out run must say so, report its real elapsed time, and
        still hand back the best circuit found so far."""
        circuit = Circuit(2)
        for _ in range(6):
            circuit.h(0).h(1).cx(0, 1).h(0).h(1).x(0).x(0)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(circuit, timeout_seconds=1e-9)
        assert result.timed_out
        assert result.time_seconds > 0.0
        # The strided check (transformation and match granularity) bounds the
        # overshoot to a sliver of work, far below a full sweep.
        assert result.time_seconds < 5.0
        assert result.final_cost <= result.initial_cost
        assert result.circuit.num_qubits == circuit.num_qubits

    def test_no_timeout_leaves_flag_unset(self, nam_transformations_small):
        circuit = Circuit(2).h(0).h(0)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(circuit, max_iterations=5)
        assert not result.timed_out

    def test_cost_trace_is_monotone(self, nam_transformations_small):
        circuit = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1).x(0).x(0)
        optimizer = BacktrackingOptimizer(nam_transformations_small)
        result = optimizer.optimize(circuit, max_iterations=60)
        costs = [cost for _time, cost in result.cost_trace]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] == result.final_cost

    def test_gamma_one_is_greedy(self, nam_transformations_small):
        circuit = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        greedy = BacktrackingOptimizer(nam_transformations_small, gamma=1.0)
        backtracking = BacktrackingOptimizer(nam_transformations_small, gamma=1.0001)
        greedy_result = greedy.optimize(circuit, max_iterations=60)
        backtracking_result = backtracking.optimize(circuit, max_iterations=60)
        # The cost-preserving H-pushing moves are unavailable at gamma = 1, so
        # greedy cannot beat the backtracking search on this circuit.
        assert backtracking_result.final_cost <= greedy_result.final_cost
