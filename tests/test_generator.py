"""Tests for ECC data structures, RepGen, pruning and brute-force counting."""

import pytest

from repro.generator import (
    ECC,
    ECCSet,
    RepGen,
    characteristic,
    count_possible_circuits,
    prune_common_subcircuits,
    simplify_ecc_set,
)
from repro.ir import Circuit
from repro.ir.gatesets import IBM, NAM, RIGETTI
from repro.ir.params import Angle, ParamSpec
from repro.semantics.simulator import circuits_equivalent_numeric


class TestECC:
    def test_representative_is_precedence_minimal(self):
        big = Circuit(1).h(0).h(0)
        small = Circuit(1).x(0)
        ecc = ECC([big, small])
        assert ecc.representative == small
        assert ecc.others() == [big]

    def test_duplicate_sequences_are_not_added_twice(self):
        ecc = ECC()
        assert ecc.add(Circuit(1).h(0))
        assert not ecc.add(Circuit(1).h(0))
        assert len(ecc) == 1

    def test_num_transformations(self):
        ecc = ECC([Circuit(1), Circuit(1).h(0).h(0), Circuit(1).z(0).z(0)])
        assert ecc.num_transformations() == 6

    def test_empty_ecc_has_no_representative(self):
        with pytest.raises(ValueError):
            ECC().representative

    def test_contains(self):
        ecc = ECC([Circuit(1).h(0)])
        assert Circuit(1).h(0) in ecc
        assert Circuit(1).x(0) not in ecc


class TestECCSet:
    def test_counts(self):
        ecc_set = ECCSet(
            [ECC([Circuit(1), Circuit(1).h(0).h(0)]), ECC([Circuit(1).x(0)])],
            num_qubits=1,
        )
        assert ecc_set.num_circuits() == 3
        assert ecc_set.num_transformations() == 2
        assert len(ecc_set.non_singleton()) == 1

    def test_json_roundtrip(self, nam_ecc_q2_n2):
        text = nam_ecc_q2_n2.to_json()
        restored = ECCSet.from_json(text)
        assert restored.num_circuits() == nam_ecc_q2_n2.num_circuits()
        assert restored.num_transformations() == nam_ecc_q2_n2.num_transformations()

    def test_json_roundtrip_is_exact_for_parametric_circuits(self, nam_ecc_q2_n3):
        """Property: from_json(to_json(s)) reproduces every representative,
        fingerprint key and class membership of a parametric ECC set.

        Cached .repro_cache/ blobs are trusted as if freshly generated, so
        this round trip must be *exact*, not merely equivalent.
        """
        from repro.semantics.fingerprint import FingerprintContext

        original = nam_ecc_q2_n3
        restored = ECCSet.from_json(original.to_json())
        assert len(restored) == len(original)
        assert restored.num_qubits == original.num_qubits
        assert restored.num_params == original.num_params
        contexts: dict = {}
        for ecc_a, ecc_b in zip(original, restored):
            # Identical class membership, in order, including exact angles.
            assert [c.sequence_key() for c in ecc_a] == [
                c.sequence_key() for c in ecc_b
            ]
            assert ecc_a.representative.sequence_key() == ecc_b.representative.sequence_key()
            for circuit_a, circuit_b in zip(ecc_a, ecc_b):
                assert circuit_a == circuit_b
                assert circuit_a.num_params == circuit_b.num_params
                # Identical fingerprint hash keys under a fresh context.
                q = circuit_a.num_qubits
                context = contexts.setdefault(
                    q, FingerprintContext(q, original.num_params)
                )
                assert context.hash_key(circuit_a) == context.hash_key(circuit_b)
        # Reserialization is byte-stable (required for content hashing).
        assert restored.to_json() == original.to_json()

    def test_json_is_canonical_in_coefficient_order(self):
        """Equal angles must serialize to identical bytes regardless of the
        insertion order of their coefficient dicts."""
        from fractions import Fraction

        from repro.ir.params import Angle

        forward = Angle(Fraction(1, 2), {0: Fraction(1), 1: Fraction(2)})
        backward = Angle(Fraction(1, 2), {1: Fraction(2), 0: Fraction(1)})
        assert forward == backward
        set_a = ECCSet(
            [ECC([Circuit(1, num_params=2).rz(0, forward)])], 1, 2
        )
        set_b = ECCSet(
            [ECC([Circuit(1, num_params=2).rz(0, backward)])], 1, 2
        )
        assert set_a.to_json() == set_b.to_json()


class TestRepGen:
    def test_characteristic_matches_paper_for_nam_q3(self):
        assert RepGen(NAM, num_qubits=3).characteristic() == 27

    def test_characteristic_matches_paper_for_rigetti_q3(self):
        assert RepGen(RIGETTI, num_qubits=3).characteristic() == 30

    def test_characteristic_helper_agrees(self):
        assert characteristic(NAM, 3) == RepGen(NAM, num_qubits=3).characteristic()
        assert characteristic(IBM, 3) == RepGen(IBM, num_qubits=3).characteristic()

    def test_generated_classes_contain_only_equivalent_circuits(self, nam_ecc_q2_n2):
        for ecc in nam_ecc_q2_n2:
            representative = ecc.representative
            for other in ecc.others():
                assert circuits_equivalent_numeric(representative, other)

    def test_known_identities_are_discovered(self, nam_ecc_q2_n3):
        """The (3, 2) Nam ECC set must contain H·H = I and the Rz merge."""
        reps = {tuple(i.gate.name for i in ecc.representative.instructions): ecc for ecc in nam_ecc_q2_n3}
        # H H should be in the class of the empty circuit.
        empty_classes = [ecc for ecc in nam_ecc_q2_n3 if len(ecc.representative) == 0]
        assert empty_classes, "the empty-circuit class must be present"
        empty_members = {
            tuple(inst.gate.name for inst in circuit.instructions)
            for circuit in empty_classes[0]
        }
        assert ("h", "h") in empty_members
        assert ("cx", "cx") in empty_members
        # An Rz-merging class must exist (rz rz ~ rz).
        assert any(
            len(ecc.representative) == 1
            and ecc.representative[0].gate.name == "rz"
            and any(len(c) == 2 for c in ecc)
            for ecc in nam_ecc_q2_n3
        )

    def test_stats_populated(self):
        generator = RepGen(NAM, num_qubits=1, num_params=2)
        result = generator.generate(2)
        assert result.stats.circuits_considered > 0
        assert result.stats.num_representatives > 0
        assert result.stats.total_time > 0
        assert result.stats.verification_time >= 0
        assert len(result.stats.rounds) == 2
        assert result.num_transformations == result.ecc_set.num_transformations()

    def test_monotone_growth_with_n(self):
        small = RepGen(NAM, num_qubits=2).generate(1).ecc_set.num_transformations()
        large = RepGen(NAM, num_qubits=2).generate(2).ecc_set.num_transformations()
        assert large >= small


class TestPruning:
    def test_simplification_removes_unused_qubits(self, nam_ecc_q2_n2):
        simplified = simplify_ecc_set(nam_ecc_q2_n2)
        for ecc in simplified:
            used = set()
            for circuit in ecc:
                used |= circuit.used_qubits()
            # After simplification, used qubits are exactly 0..k-1.
            assert used == set(range(len(used)))

    def test_simplification_reduces_or_preserves_class_count(self, nam_ecc_q2_n2):
        simplified = simplify_ecc_set(nam_ecc_q2_n2)
        assert len(simplified) <= len(nam_ecc_q2_n2)

    def test_common_subcircuit_pruning_reduces_circuits(self, nam_ecc_q2_n2):
        simplified = simplify_ecc_set(nam_ecc_q2_n2)
        pruned = prune_common_subcircuits(simplified)
        assert pruned.num_circuits() <= simplified.num_circuits()
        # No class in the pruned set shares a boundary gate with its rep.
        for ecc in pruned:
            assert len(ecc) >= 2

    def test_pruned_classes_remain_equivalent(self, nam_ecc_q2_n3):
        pruned = prune_common_subcircuits(simplify_ecc_set(nam_ecc_q2_n3))
        for ecc in list(pruned)[:10]:
            rep = ecc.representative
            for other in ecc.others():
                assert circuits_equivalent_numeric(rep, other)


class TestBruteForceCounts:
    def test_possible_circuits_matches_paper_nam_n2_q3(self):
        # Table 6: 604 possible circuits for Nam, n=2, q=3.
        assert count_possible_circuits(NAM, 2, 3) == 604

    def test_possible_circuits_matches_paper_nam_n3_q3(self):
        # Table 6: 11,404 possible circuits for Nam, n=3, q=3.
        assert count_possible_circuits(NAM, 3, 3) == 11404

    def test_characteristic_values_match_paper(self):
        # Section 7.4 / Table 8: ch = 27 (Nam), 30 (Rigetti) at q=3;
        # ch for q=1,2,4 on Nam are 7, 16, 40.
        assert characteristic(NAM, 1) == 7
        assert characteristic(NAM, 2) == 16
        assert characteristic(NAM, 4) == 40
        assert characteristic(RIGETTI, 3) == 30

    def test_count_with_n1_is_characteristic_plus_empty(self):
        assert count_possible_circuits(NAM, 1, 3) == characteristic(NAM, 3) + 1

    def test_repgen_considers_fewer_than_possible(self):
        generator = RepGen(NAM, num_qubits=2, num_params=2)
        result = generator.generate(2)
        assert result.stats.circuits_considered < count_possible_circuits(NAM, 2, 2)

    def test_single_use_restriction_lowers_count(self):
        unrestricted = count_possible_circuits(
            NAM, 3, 2, param_spec=ParamSpec(2, single_use=False)
        )
        restricted = count_possible_circuits(NAM, 3, 2)
        assert restricted < unrestricted
