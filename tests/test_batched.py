"""Property tests for the batched multi-state simulation kernels.

The load-bearing invariant: batching changes *when* gate applications and
inner products happen, never *what* they compute.  Concretely:

* on the numpy backend, every batched operation is **bit-identical** to the
  per-state loop (asserted with ``np.array_equal`` / integer equality on
  hash keys — the property the fingerprint bucketing relies on);
* the numba kernel logic (run uncompiled here, JIT-compiled in the CI
  numba leg) agrees with numpy to floating-point tolerance on every gate
  shape and batch size;
* ``FingerprintContext.hash_keys_batched`` returns exactly the keys the
  per-state ``hash_key_appended`` path returns, degenerate batches of one
  state never touch the stacked-array kernel, and the flag round-trips
  through specs and pickling.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.circuit import Circuit, Instruction
from repro.perf import PerfRecorder
from repro.semantics.backend import NumpyBackend, SimulatorBackend, get_backend
from repro.semantics.fingerprint import FingerprintContext, resolve_batched
from repro.semantics.numba_backend import (
    apply_gate_batch_reference,
    apply_gate_reference,
    inner_product_batch_reference,
)
from repro.semantics.simulator import instruction_unitary, random_state

#: (gate name, operand count) pool for random gate draws.
GATE_POOL = [
    ("h", 1),
    ("x", 1),
    ("t", 1),
    ("tdg", 1),
    ("s", 1),
    ("cx", 2),
    ("cz", 2),
    ("ccx", 3),
]


@st.composite
def gate_cases(draw, max_qubits=4, max_batch=6):
    """A (matrix, qubits, num_qubits, stacked states) batched-apply case."""
    num_qubits = draw(st.integers(1, max_qubits))
    eligible = [(g, k) for g, k in GATE_POOL if k <= num_qubits]
    gate, arity = draw(st.sampled_from(eligible))
    qubits = tuple(
        draw(
            st.permutations(range(num_qubits)).map(lambda p: p[:arity])
        )
    )
    batch = draw(st.integers(1, max_batch))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    states = np.stack([random_state(num_qubits, rng) for _ in range(batch)])
    matrix = instruction_unitary(Instruction(gate, qubits))
    return matrix, qubits, num_qubits, states


class LoopBackend(SimulatorBackend):
    """A backend with only ``apply_gate``: exercises the generic batch loop."""

    name = "loop-reference"

    def apply_gate(self, state, matrix, qubits, num_qubits):
        return apply_gate_reference(state, matrix, qubits, num_qubits)


class FusedReferenceBackend(SimulatorBackend):
    """Uncompiled stand-in for a fused-kernel backend (numba-shaped).

    Declares ``batch_bit_identical = False`` like the real numba backend,
    so it drives the fingerprint layer's fused-backend code paths on
    machines without numba.
    """

    name = "fused-reference"
    batch_kind = "jit"
    batch_bit_identical = False

    def apply_gate(self, state, matrix, qubits, num_qubits):
        return apply_gate_reference(state, matrix, qubits, num_qubits)

    def apply_gate_batch(self, states, matrix, qubits, num_qubits):
        return apply_gate_batch_reference(states, matrix, qubits, num_qubits)

    def inner_product_batch(self, bra, states):
        return inner_product_batch_reference(bra, states)


class TestApplyGateBatchParity:
    @settings(max_examples=60, deadline=None)
    @given(gate_cases())
    def test_numpy_batch_is_bit_identical_to_per_state(self, case):
        matrix, qubits, num_qubits, states = case
        backend = get_backend("numpy")
        batched = backend.apply_gate_batch(states, matrix, qubits, num_qubits)
        per_state = np.stack(
            [backend.apply_gate(s, matrix, qubits, num_qubits) for s in states]
        )
        assert np.array_equal(batched, per_state)

    @settings(max_examples=60, deadline=None)
    @given(gate_cases())
    def test_kernel_batch_matches_kernel_per_state_and_numpy(self, case):
        matrix, qubits, num_qubits, states = case
        batched = apply_gate_batch_reference(states, matrix, qubits, num_qubits)
        per_state = np.stack(
            [apply_gate_reference(s, matrix, qubits, num_qubits) for s in states]
        )
        numpy_batched = get_backend("numpy").apply_gate_batch(
            states, matrix, qubits, num_qubits
        )
        np.testing.assert_allclose(batched, per_state, atol=1e-12)
        np.testing.assert_allclose(batched, numpy_batched, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(gate_cases())
    def test_generic_base_loop_is_bit_identical(self, case):
        matrix, qubits, num_qubits, states = case
        backend = LoopBackend()
        batched = backend.apply_gate_batch(states, matrix, qubits, num_qubits)
        per_state = np.stack(
            [backend.apply_gate(s, matrix, qubits, num_qubits) for s in states]
        )
        assert np.array_equal(batched, per_state)


class TestInnerProductBatchParity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 8),
        st.integers(0, 2**31),
    )
    def test_numpy_batch_is_bit_identical_to_vdot(self, num_qubits, batch, seed):
        rng = np.random.default_rng(seed)
        bra = random_state(num_qubits, rng)
        states = np.stack([random_state(num_qubits, rng) for _ in range(batch)])
        batched = get_backend("numpy").inner_product_batch(bra, states)
        per_state = np.array([np.vdot(bra, s) for s in states])
        assert np.array_equal(batched, per_state)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 8),
        st.integers(0, 2**31),
    )
    def test_kernel_batch_matches_vdot(self, num_qubits, batch, seed):
        rng = np.random.default_rng(seed)
        bra = random_state(num_qubits, rng)
        states = np.stack([random_state(num_qubits, rng) for _ in range(batch)])
        batched = inner_product_batch_reference(bra, states)
        per_state = np.array([np.vdot(bra, s) for s in states])
        np.testing.assert_allclose(batched, per_state, atol=1e-12)


@st.composite
def fingerprint_jobs(draw, num_qubits=2, max_parents=3, max_extensions=5):
    """RepGen-shaped jobs: (parent circuit, single-gate extensions)."""
    jobs = []
    for _ in range(draw(st.integers(1, max_parents))):
        parent = Circuit(num_qubits)
        for _ in range(draw(st.integers(0, 6))):
            gate, arity = draw(
                st.sampled_from([(g, k) for g, k in GATE_POOL if k <= num_qubits])
            )
            qubits = draw(
                st.permutations(range(num_qubits)).map(lambda p: tuple(p[:arity]))
            )
            parent.append(gate, qubits)
        extensions = []
        for _ in range(draw(st.integers(1, max_extensions))):
            gate, arity = draw(
                st.sampled_from([(g, k) for g, k in GATE_POOL if k <= num_qubits])
            )
            qubits = draw(
                st.permutations(range(num_qubits)).map(lambda p: tuple(p[:arity]))
            )
            extensions.append(Instruction(gate, qubits))
        jobs.append((parent, extensions))
    return jobs


class TestHashKeysBatched:
    """The regression the satellite demands: numpy-backend fingerprint hash
    keys are unchanged by batching."""

    @settings(max_examples=40, deadline=None)
    @given(fingerprint_jobs())
    def test_batched_keys_and_states_bit_identical_to_per_state(self, jobs):
        batched = FingerprintContext(2, 0, batched=True)
        per_state = FingerprintContext(2, 0, batched=False)
        batched_keys = batched.hash_keys_batched(jobs)
        expected = [
            [per_state.hash_key_appended(parent, inst) for inst in extensions]
            for parent, extensions in jobs
        ]
        assert batched_keys == expected
        # The cached candidate states must be bit-identical too (the
        # verifier's phase screen reads them).
        for parent, extensions in jobs:
            parent_key = parent.sequence_key()
            for inst in extensions:
                key = parent_key + (inst.sort_key(),)
                left = batched.cached_state(key)
                right = per_state.cached_state(key)
                assert left is not None and right is not None
                assert np.array_equal(left, right)

    def test_full_context_api_unchanged_by_batching(self):
        circuit = Circuit(2).h(0).cx(0, 1).t(1).h(1)
        batched = FingerprintContext(2, 0, batched=True)
        per_state = FingerprintContext(2, 0, batched=False)
        assert batched.hash_key(circuit) == per_state.hash_key(circuit)
        assert batched.fingerprint(circuit) == per_state.fingerprint(circuit)
        amp_pair = batched.amplitudes((circuit, circuit))
        assert amp_pair[0] == per_state.amplitude(circuit)
        assert amp_pair[0] == amp_pair[1]

    def test_singleton_group_skips_the_stacked_kernel(self, monkeypatch):
        perf = PerfRecorder()
        context = FingerprintContext(2, 0, batched=True, perf=perf)
        parent = Circuit(2).h(0)
        inst = Instruction("x", (1,))

        def forbid_batch(*_args, **_kwargs):
            raise AssertionError(
                "apply_gate_batch must not run for a degenerate batch of 1"
            )

        monkeypatch.setattr(NumpyBackend, "apply_gate_batch", forbid_batch)
        keys = context.hash_keys_batched([(parent, [inst])])
        reference = FingerprintContext(2, 0, batched=False)
        assert keys == [[reference.hash_key_appended(parent, inst)]]
        counters = perf.snapshot()
        assert counters.get("fingerprint.batched.singletons") == 1
        assert "fingerprint.batched.states" not in counters

    def test_fused_backend_keys_independent_of_chunking(self):
        """On fused-kernel backends a candidate's amplitude must not depend
        on how candidates were grouped: worker chunking changes group
        composition (a shared instruction can degenerate to singletons), so
        every batch size — including 1 — must route through the same
        kernel, or sharded runs would diverge from serial ones by ulps."""
        parents = [Circuit(2).h(0), Circuit(2).h(0).cx(0, 1), Circuit(2).x(1)]
        shared = [Instruction("x", (0,)), Instruction("cx", (1, 0))]
        jobs = [(parent, list(shared)) for parent in parents]

        whole = FingerprintContext(2, 0, backend=FusedReferenceBackend(), batched=True)
        keys_whole = whole.hash_keys_batched(jobs)
        chunked = FingerprintContext(
            2, 0, backend=FusedReferenceBackend(), batched=True
        )
        keys_chunked = [chunked.hash_keys_batched([job])[0] for job in jobs]
        assert keys_whole == keys_chunked
        # Stronger than key equality: the cached candidate states must be
        # bitwise identical between the two groupings.
        for parent, extensions in jobs:
            parent_key = parent.sequence_key()
            for inst in extensions:
                key = parent_key + (inst.sort_key(),)
                assert np.array_equal(
                    whole.cached_state(key), chunked.cached_state(key)
                )

    def test_cached_states_do_not_alias_the_group_stack(self):
        """Cached candidate states must own their memory: a row view would
        pin the whole (num_states, dim) stack until every row is evicted."""
        context = FingerprintContext(2, 0, batched=True)
        parents = [Circuit(2).h(0), Circuit(2).x(0)]
        inst = Instruction("x", (1,))
        context.hash_keys_batched([(parent, [inst]) for parent in parents])
        for parent in parents:
            state = context.cached_state(parent.sequence_key() + (inst.sort_key(),))
            assert state.base is None

    def test_cross_check_samples_the_batched_path(self):
        context = FingerprintContext(2, 0, batched=True, cross_check_interval=3)
        perf = PerfRecorder()
        context.perf = perf
        parent = Circuit(2).h(0).cx(0, 1)
        extensions = [Instruction("x", (q % 2,)) for q in range(7)]
        # Duplicate instructions are legal candidates; dedup is not this
        # layer's concern.
        context.hash_keys_batched([(parent, extensions[:1])])
        context.hash_keys_batched([(parent, extensions)])
        assert perf.snapshot().get("fingerprint.cross_checks", 0) >= 2


class TestBatchedKnobPlumbing:
    def test_resolve_batched_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCHED", raising=False)
        assert resolve_batched(None) is True
        monkeypatch.setenv("REPRO_BATCHED", "0")
        assert resolve_batched(None) is False
        assert resolve_batched(True) is True
        assert resolve_batched(False) is False

    def test_context_spec_roundtrip_carries_batched(self):
        context = FingerprintContext(2, 1, batched=False)
        spec = context.spec()
        assert spec["batched"] is False
        assert FingerprintContext.from_spec(spec).batched is False
        # Old specs (pre-batching) default to the batched path, which is
        # bit-identical on the backends they could name.
        del spec["batched"]
        assert FingerprintContext.from_spec(spec).batched is True

    def test_verifier_spec_roundtrip_carries_batched(self):
        from repro.verifier import EquivalenceVerifier

        verifier = EquivalenceVerifier(num_params=1, batched=False)
        spec = verifier.spec()
        assert spec["batched"] is False
        assert EquivalenceVerifier.from_spec(spec).batched is False
        del spec["batched"]
        assert EquivalenceVerifier.from_spec(spec).batched is True

    def test_repgen_batched_cache_namespace_is_shared_on_numpy(self):
        from repro.generator import RepGen
        from repro.ir.gatesets import NAM

        batched = RepGen(NAM, num_qubits=2, num_params=2, batched=True)
        per_state = RepGen(NAM, num_qubits=2, num_params=2, batched=False)
        # Bit-identical batching must share cache blobs with per-state runs.
        assert batched._cache_key(2) == per_state._cache_key(2)
        assert batched._cache_key(2).kind == "repgen"


class TestGenerationByteIdentity:
    def test_batched_generation_is_byte_identical(self):
        from repro.generator import RepGen
        from repro.ir.gatesets import NAM

        batched = RepGen(NAM, num_qubits=2, num_params=2, batched=True).generate(2)
        per_state = RepGen(NAM, num_qubits=2, num_params=2, batched=False).generate(2)
        assert batched.ecc_set.to_json() == per_state.ecc_set.to_json()
        assert batched.stats.perf.get("fingerprint.batched.calls", 0) > 0
        assert per_state.stats.perf.get("fingerprint.batched.calls", 0) == 0

    def test_batched_workers_match_per_state_serial(self):
        from repro.generator import RepGen
        from repro.ir.gatesets import NAM

        parallel = RepGen(
            NAM, num_qubits=2, num_params=2, workers=2, batched=True
        ).generate(2)
        serial = RepGen(
            NAM, num_qubits=2, num_params=2, batched=False
        ).generate(2)
        assert parallel.ecc_set.to_json() == serial.ecc_set.to_json()


class TestCompiledNumbaBatchKernels:
    """JIT parity — runs in the CI numba leg, skips elsewhere."""

    @pytest.fixture(autouse=True)
    def _require_numba(self):
        pytest.importorskip("numba")

    def test_compiled_batch_kernel_matches_numpy(self):
        backend = get_backend("numba")
        numpy_backend = get_backend("numpy")
        rng = np.random.default_rng(23)
        for gate, qubits, num_qubits in [
            ("h", (2,), 4),
            ("x", (0,), 1),
            ("cx", (3, 1), 4),
            ("cz", (0, 2), 3),
            ("ccx", (4, 0, 2), 5),
        ]:
            matrix = instruction_unitary(Instruction(gate, qubits))
            states = np.stack([random_state(num_qubits, rng) for _ in range(7)])
            np.testing.assert_allclose(
                backend.apply_gate_batch(states, matrix, qubits, num_qubits),
                numpy_backend.apply_gate_batch(states, matrix, qubits, num_qubits),
                atol=1e-12,
            )

    def test_compiled_inner_product_matches_vdot(self):
        backend = get_backend("numba")
        rng = np.random.default_rng(29)
        bra = random_state(4, rng)
        states = np.stack([random_state(4, rng) for _ in range(9)])
        np.testing.assert_allclose(
            backend.inner_product_batch(bra, states),
            np.array([np.vdot(bra, s) for s in states]),
            atol=1e-12,
        )

    def test_numba_batched_generation_matches_numpy_eccs(self):
        from repro.generator import RepGen
        from repro.ir.gatesets import NAM

        numpy_result = RepGen(NAM, num_qubits=2, num_params=2).generate(2)
        numba_result = RepGen(
            NAM, num_qubits=2, num_params=2, backend="numba", batched=True
        ).generate(2)
        assert numba_result.stats.num_eccs == numpy_result.stats.num_eccs
        assert (
            numba_result.stats.num_transformations
            == numpy_result.stats.num_transformations
        )

    def test_numba_batched_cache_namespace_is_separate(self):
        from repro.generator import RepGen
        from repro.ir.gatesets import NAM

        batched = RepGen(
            NAM, num_qubits=2, num_params=2, backend="numba", batched=True
        )
        per_state = RepGen(
            NAM, num_qubits=2, num_params=2, backend="numba", batched=False
        )
        assert batched._cache_key(2).kind == "repgen@numba+batch"
        assert per_state._cache_key(2).kind == "repgen@numba"
