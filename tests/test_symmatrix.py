"""Tests for symbolic matrices over trig polynomials."""

import pytest

from repro.linalg.cnumber import CNumber
from repro.linalg.symmatrix import SymMatrix
from repro.linalg.trigpoly import TrigPoly


def constant_matrix(values):
    return SymMatrix.from_entries(
        [[CNumber(v) for v in row] for row in values]
    )


class TestConstruction:
    def test_identity(self):
        identity = SymMatrix.identity(2)
        assert identity[0, 0] == TrigPoly.one()
        assert identity[0, 1] == TrigPoly.zero()

    def test_zeros(self):
        assert SymMatrix.zeros(2, 3).shape() == (2, 3)
        assert SymMatrix.zeros(2, 3).is_zero()

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            SymMatrix([[TrigPoly.one()], [TrigPoly.one(), TrigPoly.zero()]])


class TestAlgebra:
    def test_matmul_matches_integer_matrices(self):
        a = constant_matrix([[1, 2], [3, 4]])
        b = constant_matrix([[5, 6], [7, 8]])
        product = a @ b
        expected = constant_matrix([[19, 22], [43, 50]])
        assert product == expected

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            SymMatrix.identity(2) @ SymMatrix.zeros(3, 3)

    def test_identity_is_neutral(self):
        x = constant_matrix([[1, 2], [3, 4]])
        assert SymMatrix.identity(2) @ x == x
        assert x @ SymMatrix.identity(2) == x

    def test_tensor_product_of_identities(self):
        assert SymMatrix.identity(2).tensor(SymMatrix.identity(2)) == SymMatrix.identity(4)

    def test_tensor_product_values(self):
        x = constant_matrix([[0, 1], [1, 0]])
        result = x.tensor(SymMatrix.identity(2))
        # X (x) I swaps the two 2x2 blocks.
        assert result[0, 2] == TrigPoly.one()
        assert result[1, 3] == TrigPoly.one()
        assert result[0, 0] == TrigPoly.zero()

    def test_scalar_mul(self):
        x = SymMatrix.identity(2).scalar_mul(CNumber(0, 1))
        assert x[0, 0] == TrigPoly.i()

    def test_add_sub(self):
        x = constant_matrix([[1, 0], [0, 1]])
        assert (x + x) - x == x

    def test_conjugate_transpose(self):
        x = SymMatrix.from_entries([[CNumber(0, 1), CNumber(2)], [CNumber(3), CNumber(0, -1)]])
        dag = x.conjugate_transpose()
        assert dag[0, 0] == TrigPoly.constant(CNumber(0, -1))
        assert dag[0, 1] == TrigPoly.constant(CNumber(3))

    def test_unitarity_of_symbolic_rz(self):
        # diag(e^{-it}, e^{it}) has U U^dagger = I symbolically.
        from repro.linalg.trigpoly import exp_i_multiple

        rz = SymMatrix(
            [
                [exp_i_multiple(-1, 0), TrigPoly.zero()],
                [TrigPoly.zero(), exp_i_multiple(1, 0)],
            ]
        )
        assert rz @ rz.conjugate_transpose() == SymMatrix.identity(2)

    def test_map_entries(self):
        doubled = SymMatrix.identity(2).map_entries(lambda p: p * 2)
        assert doubled[0, 0] == TrigPoly.constant(2)

    def test_equality_and_hash(self):
        assert SymMatrix.identity(2) == SymMatrix.identity(2)
        assert hash(SymMatrix.identity(2)) == hash(SymMatrix.identity(2))
        assert SymMatrix.identity(2) != SymMatrix.zeros(2, 2)
