"""Crash-safe RepGen checkpoint/resume tests (``repgen-ckpt@…`` blobs).

The contract: with ``resume`` on, every completed round persists enough
state that a killed run restarts at the last completed round — and the
resumed run's ``ECCSet.to_json`` is byte-identical to an uninterrupted
one's.  Resume is an optimization, never a correctness dependency: an
unusable checkpoint (wrong scale, garbage) is dropped with a warning and
the run regenerates from round 1.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import FaultInjected
from repro.faults import FaultPlan
from repro.generator import RepGen
from repro.generator.cache import ECCCache
from repro.ir.gatesets import NAM


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    faults.set_fault_plan(None)
    yield
    faults.set_fault_plan(None)


@pytest.fixture()
def cache(tmp_path):
    return ECCCache(tmp_path / "cache", enabled=True)


def _repgen(**kwargs):
    return RepGen(NAM, num_qubits=2, num_params=2, **kwargs)


def _ckpt_blobs(cache):
    if not cache.directory.exists():
        return []
    return sorted(cache.directory.glob("repgen-ckpt_*.json"))


@pytest.fixture(scope="module")
def uninterrupted_json():
    return _repgen().generate(2).ecc_set.to_json()


class TestCrashResume:
    def test_crash_then_resume_is_byte_identical(self, cache, uninterrupted_json):
        # Round 1 completes, checkpoints, then the injected crash kills the
        # run — the canonical "operator preemption mid-generation" story.
        crashed = _repgen(resume=True)
        faults.set_fault_plan(FaultPlan.from_string("crash_run:gen:round1"))
        with pytest.raises(FaultInjected):
            crashed.generate(2, cache=cache)
        assert len(_ckpt_blobs(cache)) == 1
        assert crashed.perf.snapshot().get("resilience.checkpoint_writes") == 1

        faults.set_fault_plan(None)
        resumed = _repgen(resume=True)
        result = resumed.generate(2, cache=cache)
        assert result.ecc_set.to_json() == uninterrupted_json
        perf = result.stats.perf
        assert perf.get("resilience.resumes") == 1
        assert perf.get("resilience.resumed_rounds") == 1
        # The completed run spends its checkpoint.
        assert _ckpt_blobs(cache) == []

    def test_resumed_stats_carry_the_completed_rounds(self, cache):
        crashed = _repgen(resume=True)
        faults.set_fault_plan(FaultPlan.from_string("crash_run:gen:round1"))
        with pytest.raises(FaultInjected):
            crashed.generate(2, cache=cache)
        faults.set_fault_plan(None)
        result = _repgen(resume=True).generate(2, cache=cache)
        # Both rounds are present even though only round 2 ran live.
        assert [entry["round"] for entry in result.stats.rounds] == [1, 2]
        reference = _repgen().generate(2)
        assert (
            result.stats.circuits_considered == reference.stats.circuits_considered
        )

    def test_resume_off_never_writes_checkpoints(self, cache):
        result = _repgen(resume=False).generate(2, cache=cache)
        assert _ckpt_blobs(cache) == []
        assert "resilience.checkpoint_writes" not in result.stats.perf
        # The finished result itself is still cached normally.
        assert list(cache.directory.glob("repgen_*.json"))

    def test_resume_without_cache_is_a_noop(self, uninterrupted_json):
        result = _repgen(resume=True).generate(2)
        assert result.ecc_set.to_json() == uninterrupted_json
        assert "resilience.checkpoint_writes" not in result.stats.perf


class TestUnusableCheckpoints:
    def test_wrong_scale_checkpoint_rejected(self, cache, uninterrupted_json):
        generator = _repgen(resume=True)
        key = generator._checkpoint_key(2)
        # A blob under the n=2 key claiming to hold n=5 state: the key
        # namespacing makes this near-impossible to produce organically,
        # but the restore path still refuses rather than trusts it.
        cache.store(
            key,
            {
                "completed_round": 1,
                "max_gates": 5,
                "eccs": [],
                "buckets": [],
                "stats": {"circuits_considered": 0, "rounds": []},
            },
        )
        with pytest.warns(RuntimeWarning, match="unusable resume checkpoint"):
            result = generator.generate(2, cache=cache)
        assert result.ecc_set.to_json() == uninterrupted_json
        assert result.stats.perf.get("resilience.checkpoint_rejects") == 1

    def test_garbage_checkpoint_rejected(self, cache, uninterrupted_json):
        generator = _repgen(resume=True)
        cache.store(generator._checkpoint_key(2), {"completed_round": "soon"})
        with pytest.warns(RuntimeWarning, match="unusable resume checkpoint"):
            result = generator.generate(2, cache=cache)
        assert result.ecc_set.to_json() == uninterrupted_json

    def test_out_of_range_round_rejected(self, cache, uninterrupted_json):
        generator = _repgen(resume=True)
        cache.store(
            generator._checkpoint_key(2),
            {
                "completed_round": 9,
                "max_gates": 2,
                "eccs": [[[2, 2, []]]],
                "buckets": [],
                "stats": {"circuits_considered": 0, "rounds": []},
            },
        )
        with pytest.warns(RuntimeWarning, match="unusable resume checkpoint"):
            result = generator.generate(2, cache=cache)
        assert result.ecc_set.to_json() == uninterrupted_json


class TestKeyNamespacing:
    def test_checkpoint_key_is_distinct_from_result_key(self):
        generator = _repgen()
        ckpt = generator._checkpoint_key(2)
        result = generator._cache_key(2)
        assert ckpt.kind == "repgen-ckpt"
        assert result.kind == "repgen"
        assert ckpt.filename() != result.filename()
        # Everything except the namespace agrees, so a checkpoint can only
        # ever be resumed by the exact configuration that wrote it.
        assert (ckpt.gate_set, ckpt.n, ckpt.q, ckpt.m, ckpt.seed) == (
            result.gate_set,
            result.n,
            result.q,
            result.m,
            result.seed,
        )

    def test_different_seed_cannot_resume(self, cache):
        crashed = _repgen(resume=True)
        faults.set_fault_plan(FaultPlan.from_string("crash_run:gen:round1"))
        with pytest.raises(FaultInjected):
            crashed.generate(2, cache=cache)
        faults.set_fault_plan(None)
        other = RepGen(NAM, num_qubits=2, num_params=2, seed=99, resume=True)
        result = other.generate(2, cache=cache)
        assert "resilience.resumes" not in result.stats.perf
