"""Tests for the Superoptimizer facade.

The acceptance bar of the API redesign: the facade must reproduce the
hand-wired pipeline *byte for byte* — identical ``ECCSet.to_json`` for the
raw and pruned sets (serial and 2-worker configs) and the identical
best-circuit cost on the quick experiment scale — while every old entry
point keeps working.
"""

from __future__ import annotations

import pytest

from repro.api import (
    GenerationConfig,
    RunConfig,
    RunReport,
    SearchConfig,
    Superoptimizer,
    clear_memory_caches,
)
from repro.benchmarks_suite import benchmark_circuit
from repro.generator import RepGen, prune_common_subcircuits, simplify_ecc_set
from repro.ir import Circuit
from repro.ir.gatesets import NAM
from repro.ir.qasm import to_qasm
from repro.optimizer import BacktrackingOptimizer, transformations_from_ecc_set
from repro.preprocess import preprocess

QUICK_N = 3
QUICK_Q = 3


@pytest.fixture(scope="module")
def hand_wired_quick():
    """The hand-wired pipeline at the quick experiment scale (Nam, n=3, q=3)."""
    result = RepGen(NAM, num_qubits=QUICK_Q).generate(QUICK_N)
    pruned = prune_common_subcircuits(simplify_ecc_set(result.ecc_set))
    transformations = transformations_from_ecc_set(pruned)
    circuit = preprocess(benchmark_circuit("tof_3"), "nam")
    search = BacktrackingOptimizer(transformations).optimize(
        circuit, max_iterations=15, timeout_seconds=60
    )
    return result, pruned, search


def _quick_facade(**overrides) -> Superoptimizer:
    defaults = dict(
        gate_set="nam",
        n=QUICK_N,
        q=QUICK_Q,
        cache_enabled=False,
        max_iterations=15,
        timeout_seconds=60,
    )
    defaults.update(overrides)
    return Superoptimizer(RunConfig().with_overrides(**defaults))


class TestByteIdentity:
    def test_serial_facade_matches_hand_wired(self, hand_wired_quick):
        result, pruned, search = hand_wired_quick
        clear_memory_caches()
        facade = _quick_facade(workers=1)
        assert facade.generate().ecc_set.to_json() == result.ecc_set.to_json()
        assert facade.ecc_set().to_json() == pruned.to_json()
        report = facade.optimize(benchmark_circuit("tof_3"))
        assert report.final_cost == search.final_cost
        assert report.initial_cost == search.initial_cost

    def test_two_worker_facade_matches_hand_wired(self, hand_wired_quick):
        result, pruned, search = hand_wired_quick
        clear_memory_caches()
        facade = _quick_facade(workers=2)
        assert facade.generate().ecc_set.to_json() == result.ecc_set.to_json()
        assert facade.ecc_set().to_json() == pruned.to_json()
        report = facade.optimize(benchmark_circuit("tof_3"))
        assert report.final_cost == search.final_cost

    def test_two_verify_worker_facade_matches_hand_wired(self, hand_wired_quick):
        result, pruned, search = hand_wired_quick
        clear_memory_caches()
        facade = _quick_facade(verify_workers=2)
        assert facade.generate().ecc_set.to_json() == result.ecc_set.to_json()
        assert facade.ecc_set().to_json() == pruned.to_json()
        report = facade.optimize(benchmark_circuit("tof_3"))
        assert report.final_cost == search.final_cost
        assert report.provenance["verify_workers"] == 2


class TestRunReport:
    @pytest.fixture(scope="class")
    def small_report(self):
        clear_memory_caches()
        facade = Superoptimizer(
            gate_set="nam", n=3, q=2, cache_enabled=False, max_iterations=100
        )
        circuit = Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1)
        return facade.optimize(circuit)

    def test_stage_timings_cover_the_pipeline(self, small_report):
        expected = {"parse", "preprocess", "generate", "extract", "search", "verify", "total"}
        assert expected <= set(small_report.stage_seconds)
        assert small_report.stage_seconds["total"] > 0

    def test_result_and_verification(self, small_report):
        # The four-Hadamard CNOT flip of Figure 3a reduces to one gate.
        assert small_report.final_cost == 1.0
        assert small_report.verified is True
        assert small_report.reduction > 0.7
        assert small_report.circuit.gate_count == 1

    def test_provenance_records_the_run(self, small_report):
        p = small_report.provenance
        assert p["backend"] == "numpy"
        assert p["strategy"] == "backtracking"
        assert p["gate_set"] == "nam"
        assert p["n"] == 3 and p["q"] == 2
        assert p["workers"] >= 1
        assert p["verify_workers"] >= 1
        assert p["generation_source"] in {"generated", "memo", "disk"}
        # The active batch path: backend name plus batched true/false (and
        # which kernel family served it).
        assert p["batched"] is True
        assert p["batch_kind"] == "vectorized"

    def test_provenance_reports_per_state_runs(self):
        facade = _quick_facade(batched=False, n=2, q=2)
        assert facade._batched is False
        report = facade.optimize(
            Circuit(2).h(0).h(0), max_iterations=2, timeout_seconds=10
        )
        assert report.provenance["batched"] is False
        assert report.provenance["batch_kind"] == "per-state"
        assert "per-state" in report.summary()

    def test_perf_counters_are_merged(self, small_report):
        perf = small_report.perf
        assert any(key.startswith("fingerprint.") for key in perf)
        assert any(key.startswith("search.") for key in perf)

    def test_as_dict_and_summary(self, small_report):
        import json

        payload = small_report.as_dict()
        json.dumps(payload)
        assert payload["optimized_gates"] == 1
        text = small_report.summary()
        assert "backtracking" in text
        assert "verification: OK" in text


class TestInputCoercion:
    def test_accepts_qasm_text(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        facade = Superoptimizer(
            gate_set="nam", n=2, q=2, cache_enabled=False, max_iterations=5
        )
        report = facade.optimize(to_qasm(circuit))
        assert report.input_circuit == circuit

    def test_accepts_qasm_path(self, tmp_path):
        circuit = Circuit(2).h(0).h(0)
        path = tmp_path / "input.qasm"
        path.write_text(to_qasm(circuit))
        facade = Superoptimizer(
            gate_set="nam", n=2, q=2, cache_enabled=False, max_iterations=20
        )
        report = facade.optimize(path)
        assert report.final_cost == 0.0  # H H cancels

    def test_rejects_garbage(self):
        facade = Superoptimizer(gate_set="nam", n=1, q=1, cache_enabled=False)
        with pytest.raises(ValueError, match="cannot interpret"):
            facade.optimize("definitely-not-a-file.qasm-nor-qasm-text")
        with pytest.raises(TypeError):
            facade.optimize(12345)


class TestConfigSurface:
    def test_constructor_rejects_non_config(self):
        with pytest.raises(TypeError, match="RunConfig"):
            Superoptimizer({"gate_set": "nam"})

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(KeyError, match="unknown simulator backend"):
            Superoptimizer(gate_set="nam", backend="quantum-gpu")

    def test_unknown_strategy_fails_fast(self):
        with pytest.raises(KeyError, match="unknown search strategy"):
            Superoptimizer(gate_set="nam", strategy="simulated-annealing")

    def test_named_unsupported_gate_set_raises_like_the_preprocessor(self):
        # clifford_t is a registered *named* set the preprocessor cannot
        # target; the facade must surface that (the legacy pipeline raised
        # here too), not silently skip preprocessing.
        facade = Superoptimizer(
            gate_set="clifford_t", n=1, q=1, cache_enabled=False
        )
        with pytest.raises(ValueError, match="preprocess=False"):
            facade.optimize(Circuit(1).h(0))
        # With preprocessing explicitly off the same config runs.
        report = Superoptimizer(
            gate_set="clifford_t",
            n=1,
            q=1,
            cache_enabled=False,
            preprocess=False,
            max_iterations=2,
        ).optimize(Circuit(1).h(0))
        assert report.provenance["preprocessed"] is False

    def test_verification_skipped_above_qubit_bound(self):
        from repro.api.facade import VERIFY_MAX_QUBITS

        wide = Circuit(VERIFY_MAX_QUBITS + 1)
        wide.h(0).cx(0, 1)
        report = Superoptimizer(
            gate_set="nam",
            n=1,
            q=1,
            cache_enabled=False,
            max_iterations=1,
            preprocess=False,
        ).optimize(wide)
        assert report.verified is None

    def test_pruned_provenance_reports_raw_result_origin(self, tmp_path):
        """A pruned-key miss served by a warm raw repgen blob is 'disk'."""
        config = dict(
            gate_set="nam", n=1, q=1, cache_dir=str(tmp_path),
            cache_enabled=True, max_iterations=1, preprocess=False,
        )
        clear_memory_caches()
        # Populate only the raw repgen blob (prune=False stores no pruned
        # blob), the way `cli generate` does.
        Superoptimizer(**config, prune=False).generate()
        clear_memory_caches()
        # Remove the pruned blob if a prior pruned run left one (none did),
        # then optimize: the pruned lookup misses, the raw lookup warm-hits.
        report = Superoptimizer(**config).optimize(Circuit(1).h(0))
        assert report.provenance["generation_source"] == "disk"
        assert report.provenance["cache_warm_hit"] is True

    def test_unpruned_provenance_reports_memo_hits(self):
        clear_memory_caches()
        facade_config = dict(
            gate_set="nam", n=1, q=1, cache_enabled=False, prune=False,
            max_iterations=1, preprocess=False,
        )
        first = Superoptimizer(**facade_config).optimize(Circuit(1).h(0))
        assert first.provenance["generation_source"] == "generated"
        second = Superoptimizer(**facade_config).optimize(Circuit(1).h(0))
        assert second.provenance["generation_source"] == "memo"

    def test_custom_gate_set_object(self):
        from repro.ir.gatesets import GateSet

        custom = GateSet("facade_test_set", ["h", "cx"], num_params=0)
        facade = Superoptimizer(
            gate_set=custom, n=2, q=2, cache_enabled=False, max_iterations=10
        )
        report = facade.optimize(Circuit(2).h(0).h(0))
        assert report.final_cost == 0.0
        assert report.provenance["gate_set"] == "facade_test_set"


class TestDiskCacheIntegration:
    def test_warm_runs_are_served_from_disk(self, tmp_path):
        config = RunConfig(
            gate_set="nam",
            generation=GenerationConfig(
                n=2, q=2, cache_dir=str(tmp_path), cache_enabled=True
            ),
            search=SearchConfig(max_iterations=5),
        )
        clear_memory_caches()
        cold = Superoptimizer(config).optimize(Circuit(2).h(0).h(0))
        assert cold.provenance["generation_source"] == "generated"
        clear_memory_caches()
        warm = Superoptimizer(config).optimize(Circuit(2).h(0).h(0))
        assert warm.provenance["generation_source"] == "disk"
        assert warm.provenance["cache_warm_hit"] is True
        assert warm.ecc_set.to_json() == cold.ecc_set.to_json()


class TestLegacyShims:
    def test_greedy_optimize_warns_and_matches_strategy(self, nam_transformations_small):
        import warnings

        from repro.optimizer import greedy_optimize
        from repro.optimizer.strategies import get_strategy

        circuit = Circuit(2).h(0).h(0).cx(0, 1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = greedy_optimize(
                circuit, nam_transformations_small, max_iterations=40
            )
        assert any(
            issubclass(w.category, DeprecationWarning) and "Superoptimizer" in str(w.message)
            for w in caught
        )
        modern = get_strategy("greedy").run(
            circuit, nam_transformations_small, max_iterations=40
        )
        assert legacy.final_cost == modern.final_cost
        assert legacy.circuit == modern.circuit

    def test_runner_wrappers_still_work(self):
        from repro.experiments.runner import build_ecc_set, quartz_optimize

        clear_memory_caches()
        ecc = build_ecc_set("nam", 2, 2, use_disk_cache=False)
        assert len(ecc) > 0
        preprocessed, optimized, result = quartz_optimize(
            benchmark_circuit("tof_3"),
            "nam",
            n=2,
            q=2,
            max_iterations=3,
            timeout_seconds=20,
        )
        assert optimized.gate_count <= preprocessed.gate_count
        assert result.iterations <= 3

    def test_quartz_optimize_skips_output_verification(self, monkeypatch):
        """The legacy wrapper stays cost-identical to the pre-facade flow."""
        from repro.api import facade
        from repro.experiments.runner import quartz_optimize

        def _fail(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("legacy quartz_optimize must not verify")

        monkeypatch.setattr(facade, "circuits_equivalent_statevector", _fail)
        clear_memory_caches()
        quartz_optimize(
            benchmark_circuit("tof_3"), "nam", n=1, q=1,
            max_iterations=1, timeout_seconds=5,
        )


class TestReportJSONRoundTrip:
    """Satellite of the service PR: a stable, versioned report schema.

    The CLI's ``--json``, the service's job reports and any archived run
    all speak :meth:`RunReport.to_json`; the round-trip guarantee is that
    serializing a deserialized report reproduces the original **bytes**.
    """

    @pytest.fixture(scope="class")
    def report(self):
        clear_memory_caches()
        facade = Superoptimizer(
            gate_set="nam", n=3, q=2, cache_enabled=False, max_iterations=100
        )
        return facade.optimize(Circuit(2).h(0).h(1).cx(0, 1).h(0).h(1))

    def test_round_trip_is_byte_identical(self, report):
        first = report.to_json()
        restored = RunReport.from_json(first)
        assert restored.to_json() == first
        # And a second hop stays fixed (the schema is a fixpoint).
        assert RunReport.from_json(restored.to_json()).to_json() == first

    def test_restored_fields_match(self, report):
        restored = RunReport.from_json(report.to_json())
        assert restored.final_cost == report.final_cost
        assert restored.verified == report.verified
        assert to_qasm(restored.circuit) == to_qasm(report.circuit)
        assert restored.provenance == report.provenance
        assert restored.stage_seconds == report.stage_seconds
        # Heavy generation artifacts are deliberately not serialized.
        assert restored.ecc_set is None and restored.config is None

    def test_dict_payloads_are_accepted(self, report):
        restored = RunReport.from_json(report.to_json_dict())
        assert restored.to_json() == report.to_json()

    def test_unsupported_schema_is_rejected(self, report):
        payload = report.to_json_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            RunReport.from_json(payload)
