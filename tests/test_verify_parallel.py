"""Tests for sharded multiprocess verification (repro.verifier.parallel).

The load-bearing property is *determinism*: a run with verifier workers
must produce an ECC set byte-identical (via ``ECCSet.to_json``) to the
serial run's, because workers only answer (candidate, anchor) equivalence
questions while the assignment of candidates to classes happens in the
parent in enumeration order, consulting the precomputed verdict table.

A second family of tests pins the bucket-adjacency property the verdict
table inherits from ``_insert_circuit``: the ±1-bucket probing never
misses an equivalence that a full pairwise sweep over the resulting class
representatives finds — serial and 2-worker alike.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import RetryExhausted
from repro.generator import RepGen
from repro.ir.circuit import Circuit
from repro.ir.gatesets import NAM, GateSet
from repro.verifier import EquivalenceVerifier, VerifierStats
from repro.verifier.parallel import (
    VERIFY_WORKERS_ENV_VAR,
    ParallelVerifierPool,
    resolve_verify_workers,
)


def _generate(verify_workers):
    return RepGen(
        NAM, num_qubits=2, num_params=2, verify_workers=verify_workers
    ).generate(2)


@pytest.fixture(scope="module")
def serial_result():
    return _generate(verify_workers=1)


class TestParallelVerificationEqualsSerial:
    def test_two_workers_byte_identical(self, serial_result):
        parallel = _generate(verify_workers=2)
        assert parallel.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_four_workers_byte_identical(self, serial_result):
        parallel = _generate(verify_workers=4)
        assert parallel.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_representatives_match(self, serial_result):
        parallel = _generate(verify_workers=2)
        assert [c.sequence_key() for c in parallel.representatives] == [
            c.sequence_key() for c in serial_result.representatives
        ]
        assert parallel.stats.num_eccs == serial_result.stats.num_eccs

    def test_combined_with_fingerprint_workers(self, serial_result):
        both = RepGen(
            NAM, num_qubits=2, num_params=2, workers=2, verify_workers=2
        ).generate(2)
        assert both.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_worker_stats_aggregated_into_parent(self, serial_result):
        result = _generate(verify_workers=2)
        perf = result.stats.perf
        assert perf.get("verifier.parallel.pools") == 1
        assert perf.get("verifier.parallel.workers") == 2
        assert perf.get("verifier.parallel.rounds", 0) >= 1
        assert perf.get("verifier.parallel.pairs", 0) > 0
        # The insert loop answered every question from the table.
        assert perf.get("verifier.parallel.table_hits", 0) > 0
        assert perf.get("verifier.parallel.table_misses", 0) == 0
        # Aggregated worker VerifierStats are surfaced as verifier.workers.*
        # and roll up into the run's verification totals.
        worker_checks = perf.get("verifier.workers.checks", 0)
        assert isinstance(worker_checks, int) and worker_checks > 0
        assert perf.get("verifier.workers.symbolic_proofs", 0) > 0
        assert perf.get("verifier.workers.seconds", 0.0) > 0.0
        assert result.stats.verification_calls >= worker_checks
        # Speculation means at least as many checks as the serial run did.
        assert (
            result.stats.verification_calls
            >= serial_result.stats.verification_calls
        )

    def test_reused_generator_does_not_double_count_worker_stats(self):
        generator = RepGen(NAM, num_qubits=2, num_params=2, verify_workers=2)
        first = generator.generate(2)
        second = generator.generate(2)
        # Identical runs ask identical questions, and the perf recorder is
        # cumulative across runs — so the second snapshot must hold exactly
        # twice the first run's worker checks.  Re-merging the first run's
        # (cumulative) worker stats would make it three times.
        first_checks = first.stats.perf.get("verifier.workers.checks")
        assert first_checks > 0
        assert second.stats.perf.get("verifier.workers.checks") == 2 * first_checks

    def test_round_failure_falls_back_to_serial(self, serial_result, monkeypatch):
        # Only PoolError (infrastructure failure surviving the pool's own
        # retry loop) triggers the serial fallback; bugs surface instead.
        def explode(self, pairs, *, round_index=None):
            raise RetryExhausted("injected verifier worker failure")

        monkeypatch.setattr(ParallelVerifierPool, "verify_pairs", explode)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = _generate(verify_workers=2)
        assert result.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_pool_setup_failure_falls_back_to_serial(self, serial_result, monkeypatch):
        def explode(self, spec, workers):
            raise OSError("injected fork failure")

        monkeypatch.setattr(ParallelVerifierPool, "__init__", explode)
        with pytest.warns(RuntimeWarning, match="verifying serially"):
            result = _generate(verify_workers=2)
        assert result.ecc_set.to_json() == serial_result.ecc_set.to_json()

    def test_custom_verifier_subclass_verifies_serially(self, serial_result):
        class PickyVerifier(EquivalenceVerifier):
            pass

        verifier = PickyVerifier(2)
        with pytest.warns(RuntimeWarning, match="stock EquivalenceVerifier"):
            result = RepGen(
                NAM,
                num_qubits=2,
                num_params=2,
                verifier=verifier,
                verify_workers=2,
            ).generate(2)
        assert result.ecc_set.to_json() == serial_result.ecc_set.to_json()
        assert result.stats.perf.get("verifier.parallel.unsupported_verifier") == 1


class TestBucketAdjacency:
    """±1-bucket probing vs a full pairwise sweep at the quick scale.

    If the probing missed an equivalence, two circuits that belong together
    would land in different classes — and by transitivity their class
    representatives would verify as equivalent.  So the sweep checks every
    pair of distinct representatives and expects *no* equivalence.
    """

    # A small constant gate set keeps the all-pairs sweep tractable.
    MINI = GateSet("adjacency_mini", ["h", "cx", "t"], num_params=0)

    def _representatives(self, verify_workers):
        result = RepGen(
            self.MINI, num_qubits=2, num_params=0, verify_workers=verify_workers
        ).generate(2)
        return [circuit for circuit in result.representatives]

    def _assert_no_missed_equivalence(self, representatives):
        sweep = EquivalenceVerifier(num_params=0)
        for i, rep_a in enumerate(representatives):
            for rep_b in representatives[i + 1 :]:
                assert not sweep.verify(rep_a, rep_b).equivalent, (
                    f"bucket probing split an equivalence class: "
                    f"{rep_a} == {rep_b}"
                )

    def test_serial_probing_matches_full_sweep(self):
        representatives = self._representatives(verify_workers=1)
        assert len(representatives) > 1
        self._assert_no_missed_equivalence(representatives)

    def test_two_worker_probing_matches_full_sweep(self):
        serial = self._representatives(verify_workers=1)
        parallel = self._representatives(verify_workers=2)
        assert [c.sequence_key() for c in parallel] == [
            c.sequence_key() for c in serial
        ]
        self._assert_no_missed_equivalence(parallel)


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, "7")
        assert resolve_verify_workers(3) == 3

    def test_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, "4")
        assert resolve_verify_workers(None) == 4
        assert RepGen(NAM, num_qubits=2).verify_workers == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(VERIFY_WORKERS_ENV_VAR, raising=False)
        assert resolve_verify_workers(None) == 1
        assert RepGen(NAM, num_qubits=2).verify_workers == 1

    def test_garbage_env_var_warns_and_runs_serially(self, monkeypatch):
        monkeypatch.setenv(VERIFY_WORKERS_ENV_VAR, "many")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert resolve_verify_workers(None) == 1

    def test_independent_of_fingerprint_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEN_WORKERS", "5")
        monkeypatch.delenv(VERIFY_WORKERS_ENV_VAR, raising=False)
        generator = RepGen(NAM, num_qubits=2)
        assert generator.workers == 5
        assert generator.verify_workers == 1


class TestVerifierSpec:
    def test_spec_roundtrip_preserves_verdicts(self):
        verifier = EquivalenceVerifier(
            num_params=2, search_linear_phase=True, seed=11
        )
        rebuilt = EquivalenceVerifier.from_spec(verifier.spec())
        assert rebuilt.num_params == verifier.num_params
        assert rebuilt.search_linear_phase is True
        assert rebuilt.seed == 11
        assert rebuilt.backend_name == verifier.backend_name
        equal = (Circuit(1).h(0).h(0), Circuit(1))
        different = (Circuit(1).x(0), Circuit(1).z(0))
        for pair in (equal, different):
            assert (
                rebuilt.verify(*pair).equivalent
                == verifier.verify(*pair).equivalent
            )

    def test_spec_is_picklable(self):
        spec = EquivalenceVerifier(num_params=1).spec()
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestPoolDirectly:
    def test_verify_pairs_returns_results_in_pair_order(self):
        pairs = [
            (Circuit(1).h(0).h(0), Circuit(1)),  # equivalent
            (Circuit(1).x(0), Circuit(1).z(0)),  # not equivalent
            (Circuit(1).s(0).s(0), Circuit(1).z(0)),  # equivalent
        ]
        with ParallelVerifierPool(
            EquivalenceVerifier(num_params=0).spec(), workers=2
        ) as pool:
            results, stats, counters = pool.verify_pairs(pairs)
        assert [r.equivalent for r in results] == [True, False, True]
        assert stats.checks == len(pairs)
        assert isinstance(stats.checks, int)
        assert stats.time_seconds > 0.0
        assert counters  # worker verifier.* counters came back

    def test_empty_batch(self):
        with ParallelVerifierPool(
            EquivalenceVerifier(num_params=0).spec(), workers=2
        ) as pool:
            results, stats, counters = pool.verify_pairs([])
        assert results == []
        assert stats.checks == 0
        assert counters == {}

    def test_single_worker_pool_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            ParallelVerifierPool(EquivalenceVerifier(num_params=0).spec(), 1)
