"""Tests for the rule-based baseline optimizers."""

import pytest

from repro.baselines import BASELINES, run_baseline
from repro.baselines.rules import (
    cancel_with_commutation,
    merge_adjacent_rotations,
    merge_u1_into_neighbours,
)
from repro.ir import Circuit
from repro.ir.params import Angle
from repro.preprocess import clifford_t_to_nam, decompose_toffolis
from repro.preprocess.transpile import nam_to_ibm
from repro.semantics.simulator import circuits_equivalent_numeric
from fractions import Fraction


def nam_test_circuit():
    high_level = Circuit(3).ccx(0, 1, 2).t(0).tdg(0).h(1).h(1).cx(0, 2).cx(0, 2)
    return clifford_t_to_nam(decompose_toffolis(high_level, greedy=False))


class TestPasses:
    def test_merge_adjacent_rotations(self):
        circuit = Circuit(1).t(0).t(0).h(0).t(0)
        merged = merge_adjacent_rotations(circuit)
        assert merged.gate_count == 3
        assert circuits_equivalent_numeric(circuit, merged)

    def test_merge_adjacent_rotations_drops_zero(self):
        circuit = Circuit(1).t(0).tdg(0)
        assert merge_adjacent_rotations(circuit).gate_count == 0

    def test_cancel_with_commutation_through_cnot_control(self):
        # Rz on the control commutes through the CNOT, so T ... Tdg cancels.
        circuit = Circuit(2).t(0).cx(0, 1).tdg(0)
        reduced = cancel_with_commutation(circuit)
        assert reduced.gate_count == 1
        assert circuits_equivalent_numeric(circuit, reduced)

    def test_cancel_with_commutation_blocked_on_target(self):
        circuit = Circuit(2).t(1).cx(0, 1).tdg(1)
        reduced = cancel_with_commutation(circuit)
        assert reduced.gate_count == 3

    def test_cancel_cnot_pair_through_shared_control(self):
        circuit = Circuit(3).cx(0, 1).cx(0, 2).cx(0, 1)
        reduced = cancel_with_commutation(circuit)
        assert reduced.gate_count == 1
        assert circuits_equivalent_numeric(circuit, reduced)

    def test_merge_u1_into_u3(self):
        circuit = (
            Circuit(1)
            .u1(0, Angle.pi(Fraction(1, 4)))
            .u3(0, Angle.pi(Fraction(1, 2)), Angle.zero(), Angle.pi(1))
        )
        merged = merge_u1_into_neighbours(circuit)
        assert merged.gate_count == 1
        assert circuits_equivalent_numeric(circuit, merged)

    def test_merge_u1_chain(self):
        circuit = (
            Circuit(1)
            .u1(0, Angle.pi(Fraction(1, 4)))
            .u1(0, Angle.pi(Fraction(1, 4)))
            .u1(0, Angle.pi(Fraction(1, 2)))
        )
        merged = merge_u1_into_neighbours(circuit)
        assert merged.gate_count == 1


class TestBaselineOptimizers:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_baselines_preserve_semantics_and_never_increase_count(self, name):
        circuit = nam_test_circuit()
        optimized = run_baseline(name, circuit, "nam")
        assert optimized.gate_count <= circuit.gate_count
        assert circuits_equivalent_numeric(circuit, optimized)

    def test_baselines_ordering_qiskit_weakest(self):
        circuit = nam_test_circuit()
        qiskit = run_baseline("qiskit", circuit, "nam").gate_count
        voqc = run_baseline("voqc", circuit, "nam").gate_count
        nam = run_baseline("nam", circuit, "nam").gate_count
        assert voqc <= qiskit
        assert nam <= voqc

    def test_ibm_baseline_uses_u1_fusion(self):
        circuit = nam_to_ibm(nam_test_circuit())
        optimized = run_baseline("qiskit", circuit, "ibm")
        assert optimized.gate_count <= circuit.gate_count
        assert circuits_equivalent_numeric(circuit, optimized)

    def test_unknown_baseline_rejected(self):
        with pytest.raises(KeyError):
            run_baseline("pytket2", Circuit(1), "nam")
