"""Shared fixtures: small generated ECC sets and random-circuit helpers.

Generating ECC sets is the slowest step, so the fixtures are session-scoped
and kept small (q = 2, n = 2/3 for the Nam gate set) — large enough to
contain the classic identities (H·H = I, CNOT flip, Rz merging) that the
matcher/optimizer tests rely on.
"""

from __future__ import annotations

import random

import pytest

from repro.generator import RepGen, prune_common_subcircuits, simplify_ecc_set
from repro.ir import Circuit
from repro.ir.gatesets import NAM
from repro.optimizer import transformations_from_ecc_set


@pytest.fixture(scope="session")
def nam_ecc_q2_n2():
    """Pruned (2, 2)-complete ECC set for the Nam gate set."""
    generator = RepGen(NAM, num_qubits=2, num_params=2)
    result = generator.generate(2)
    return prune_common_subcircuits(simplify_ecc_set(result.ecc_set))


@pytest.fixture(scope="session")
def nam_ecc_q2_n3():
    """Pruned (3, 2)-complete ECC set for the Nam gate set."""
    generator = RepGen(NAM, num_qubits=2, num_params=2)
    result = generator.generate(3)
    return prune_common_subcircuits(simplify_ecc_set(result.ecc_set))


@pytest.fixture(scope="session")
def nam_transformations_small(nam_ecc_q2_n3):
    """Transformations extracted from the (3, 2) Nam ECC set."""
    return transformations_from_ecc_set(nam_ecc_q2_n3)


def random_clifford_t_circuit(
    num_qubits: int, num_gates: int, seed: int, include_ccx: bool = False
) -> Circuit:
    """A random Clifford+T circuit, used by the property-based tests."""
    rng = random.Random(seed)
    circuit = Circuit(num_qubits)
    single = ["h", "x", "t", "tdg", "s", "sdg", "z"]
    for _ in range(num_gates):
        choice = rng.random()
        if include_ccx and num_qubits >= 3 and choice < 0.15:
            qubits = rng.sample(range(num_qubits), 3)
            circuit.ccx(*qubits)
        elif num_qubits >= 2 and choice < 0.45:
            control, target = rng.sample(range(num_qubits), 2)
            circuit.cx(control, target)
        else:
            gate = rng.choice(single)
            circuit.append(gate, rng.randrange(num_qubits))
    return circuit


@pytest.fixture
def random_circuit_factory():
    """Factory fixture so tests can build seeded random circuits."""
    return random_clifford_t_circuit
