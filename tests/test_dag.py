"""Tests for the DAG representation: convexity and splicing."""

import pytest

from repro.ir.circuit import Circuit, Instruction
from repro.ir.dag import CircuitDAG
from repro.semantics.simulator import circuits_equivalent_numeric


def figure2_circuit():
    """The running example of Figure 2a/5: X, H, H, U-ish gates and CNOTs."""
    circuit = Circuit(3)
    circuit.x(2)
    circuit.h(1)
    circuit.h(2)  # stand-in for the parametric gates of the figure
    circuit.cx(1, 2)
    circuit.cx(0, 1)
    return circuit


class TestConstruction:
    def test_roundtrip(self):
        circuit = figure2_circuit()
        dag = CircuitDAG.from_circuit(circuit)
        assert dag.to_circuit() == circuit
        assert len(dag) == circuit.gate_count

    def test_wire_order(self):
        circuit = Circuit(2).h(0).cx(0, 1).x(0)
        dag = CircuitDAG.from_circuit(circuit)
        assert dag.wires[0] == [0, 1, 2]
        assert dag.wires[1] == [1]
        assert dag.next_on_wire(0, 0) == 1
        assert dag.prev_on_wire(2, 0) == 1
        assert dag.next_on_wire(2, 0) is None
        assert dag.prev_on_wire(0, 0) is None

    def test_predecessors_successors(self):
        circuit = Circuit(2).h(0).cx(0, 1).x(1)
        dag = CircuitDAG.from_circuit(circuit)
        assert dag.predecessors[1] == {0}
        assert dag.successors[1] == {2}
        assert dag.predecessors[0] == set()

    def test_ancestors_descendants(self):
        circuit = Circuit(2).h(0).cx(0, 1).x(1).h(0)
        dag = CircuitDAG.from_circuit(circuit)
        assert dag.descendants([0]) == {1, 2, 3}
        assert dag.ancestors([2]) == {0, 1}


class TestConvexity:
    def test_convex_subcircuit(self):
        # The green box of Figure 2a: the H and CNOT acting on qubits 1, 2.
        circuit = figure2_circuit()
        dag = CircuitDAG.from_circuit(circuit)
        assert dag.is_convex({1, 3})  # h(1) and cx(1,2)

    def test_non_convex_subset(self):
        # Two gates with an unmatched gate between them on the same wire.
        circuit = Circuit(1).h(0).x(0).h(0)
        dag = CircuitDAG.from_circuit(circuit)
        assert not dag.is_convex({0, 2})
        assert dag.is_convex({0, 1})
        assert dag.is_convex({0})

    def test_empty_set_is_convex(self):
        dag = CircuitDAG.from_circuit(figure2_circuit())
        assert dag.is_convex(set())


class TestSplice:
    def test_splice_replaces_gates(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1)
        dag = CircuitDAG.from_circuit(circuit)
        new_circuit = dag.splice([0, 1], [])  # remove the H H pair
        assert new_circuit.gate_count == 1
        assert new_circuit[0].gate.name == "cx"
        assert circuits_equivalent_numeric(circuit, new_circuit)

    def test_splice_preserves_order_of_context(self):
        circuit = Circuit(2).x(1).h(0).h(0).cx(0, 1).x(1)
        dag = CircuitDAG.from_circuit(circuit)
        new_circuit = dag.splice([1, 2], [Instruction("z", (0,)), Instruction("z", (0,))])
        assert new_circuit.gate_count == 5
        assert circuits_equivalent_numeric(circuit, new_circuit)

    def test_splice_rejects_non_convex(self):
        circuit = Circuit(1).h(0).x(0).h(0)
        dag = CircuitDAG.from_circuit(circuit)
        with pytest.raises(ValueError):
            dag.splice([0, 2], [])

    def test_splice_keeps_ancestors_before_replacement(self):
        circuit = Circuit(2).h(0).cx(0, 1).x(1)
        dag = CircuitDAG.from_circuit(circuit)
        new_circuit = dag.splice([2], [Instruction("z", (1,))])
        names = [inst.gate.name for inst in new_circuit.instructions]
        assert names == ["h", "cx", "z"]
