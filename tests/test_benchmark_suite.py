"""Tests for the 26-circuit benchmark suite."""

import pytest

from repro.benchmarks_suite import (
    BENCHMARK_BUILDERS,
    MEDIUM_BENCHMARKS,
    SMALL_BENCHMARKS,
    benchmark_circuit,
    benchmark_names,
)
from repro.benchmarks_suite.arithmetic import cuccaro_adder, vbe_adder
from repro.benchmarks_suite.gf2 import gf2_mult
from repro.benchmarks_suite.toffoli_family import barenco_tof_n, tof_n
from repro.ir.gatesets import CLIFFORD_T
from repro.semantics.simulator import circuit_unitary
import numpy as np


class TestSuiteStructure:
    def test_all_26_benchmarks_present(self):
        assert len(benchmark_names()) == 26

    def test_paper_names_are_present(self):
        for name in ("adder_8", "gf2^10_mult", "qcla_mod_7", "mod5_4", "tof_10"):
            assert name in BENCHMARK_BUILDERS

    def test_small_and_medium_subsets_are_valid(self):
        assert set(SMALL_BENCHMARKS) <= set(benchmark_names())
        assert set(MEDIUM_BENCHMARKS) <= set(benchmark_names())
        assert set(SMALL_BENCHMARKS) <= set(MEDIUM_BENCHMARKS)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            benchmark_circuit("qft_8")

    @pytest.mark.parametrize("name", sorted(BENCHMARK_BUILDERS))
    def test_every_benchmark_builds_in_clifford_t(self, name):
        circuit = benchmark_circuit(name)
        assert circuit.gate_count > 0
        assert circuit.num_qubits > 0
        allowed = set(CLIFFORD_T.gate_names()) | {"cx", "ccx", "ccz", "x"}
        assert all(inst.gate.name in allowed for inst in circuit.instructions)

    def test_builders_are_deterministic(self):
        assert benchmark_circuit("tof_5") == benchmark_circuit("tof_5")


class TestToffoliFamily:
    def test_tof_n_gate_counts_match_formula(self):
        # 2n-3 Toffolis, matching the original 15(2n-3) Clifford+T counts.
        for n in (3, 4, 5, 10):
            assert benchmark_circuit(f"tof_{n}").count_gate("ccx") == 2 * n - 3

    def test_tof_2_is_single_toffoli(self):
        assert tof_n(2).gate_count == 1

    def test_tof_n_computes_the_and_of_controls(self):
        # For n = 3: |111> on the controls flips the target.
        circuit = tof_n(3)
        unitary = circuit_unitary(circuit)
        num_qubits = circuit.num_qubits
        # Input: controls all 1, ancilla 0, target 0.
        in_index = sum(1 << (num_qubits - 1 - q) for q in range(3))
        out_state = unitary @ np.eye(1 << num_qubits)[in_index]
        expected_index = in_index | 1  # target is the last qubit
        assert np.isclose(abs(out_state[expected_index]), 1.0)

    def test_tof_n_identity_when_a_control_is_zero(self):
        circuit = tof_n(3)
        unitary = circuit_unitary(circuit)
        num_qubits = circuit.num_qubits
        in_index = 1 << (num_qubits - 1)  # only the first control set
        out_state = unitary @ np.eye(1 << num_qubits)[in_index]
        assert np.isclose(abs(out_state[in_index]), 1.0)

    def test_barenco_restores_ancillas(self):
        # Dirty ancillas must return to their initial value: the circuit on
        # |c=111, a=1, t=0> must flip only the target.
        circuit = barenco_tof_n(3)
        unitary = circuit_unitary(circuit)
        num_qubits = circuit.num_qubits
        in_index = (
            sum(1 << (num_qubits - 1 - q) for q in range(3))  # controls
            | (1 << (num_qubits - 1 - 3))  # dirty ancilla set to 1
        )
        out_state = unitary @ np.eye(1 << num_qubits)[in_index]
        assert np.isclose(abs(out_state[in_index | 1]), 1.0)

    def test_invalid_control_counts(self):
        with pytest.raises(ValueError):
            tof_n(1)
        with pytest.raises(ValueError):
            barenco_tof_n(0)


class TestAdders:
    def _check_adder(self, circuit, a_bits, b_bits, layout):
        """Simulate on a computational basis state and check a + b."""
        unitary = circuit_unitary(circuit)
        num_qubits = circuit.num_qubits
        index = 0
        for qubit, value in layout(a_bits, b_bits).items():
            if value:
                index |= 1 << (num_qubits - 1 - qubit)
        out_state = unitary @ np.eye(1 << num_qubits)[index]
        out_index = int(np.argmax(np.abs(out_state)))
        assert np.isclose(abs(out_state[out_index]), 1.0)
        return out_index

    def test_vbe_adder_adds_one_bit(self):
        circuit = vbe_adder(1)
        # Layout per bit: carry, a, b; final qubit is carry-out.
        unitary = circuit_unitary(circuit)
        # a=1, b=1 -> b stays (1+1) mod 2 = 0, carry-out 1.
        index = (1 << (circuit.num_qubits - 1 - 1)) | (1 << (circuit.num_qubits - 1 - 2))
        out = unitary @ np.eye(1 << circuit.num_qubits)[index]
        out_index = int(np.argmax(np.abs(out)))
        bits = format(out_index, f"0{circuit.num_qubits}b")
        assert bits[1] == "1"  # a unchanged
        assert bits[2] == "0"  # sum bit
        assert bits[3] == "1"  # carry out
        assert np.isclose(abs(out[out_index]), 1.0)

    def test_cuccaro_adder_is_permutation(self):
        unitary = circuit_unitary(cuccaro_adder(2))
        assert np.allclose(np.abs(unitary) ** 2 @ np.ones(unitary.shape[0]), 1.0)

    def test_cuccaro_adds_two_plus_one(self):
        circuit = cuccaro_adder(2)
        # Layout: carry-in 0, then (b0, a0), (b1, a1), carry-out.
        # a = 01b (a0=1), b = 10b (b1=1) -> b becomes a+b = 11b.
        num_qubits = circuit.num_qubits
        index = (1 << (num_qubits - 1 - 2)) | (1 << (num_qubits - 1 - 3))
        unitary = circuit_unitary(circuit)
        out = unitary @ np.eye(1 << num_qubits)[index]
        out_index = int(np.argmax(np.abs(out)))
        bits = format(out_index, f"0{num_qubits}b")
        assert bits[1] == "1" and bits[3] == "1"  # b now 11
        assert bits[2] == "1"  # a unchanged (a0)

    def test_invalid_bit_counts(self):
        with pytest.raises(ValueError):
            vbe_adder(0)
        with pytest.raises(ValueError):
            cuccaro_adder(0)


class TestGF2:
    def test_gf2_multiplier_toffoli_count_is_at_least_n_squared(self):
        for n in (4, 5):
            assert gf2_mult(n).count_gate("ccx") >= n * n

    def test_gf2_unsupported_size(self):
        with pytest.raises(ValueError):
            gf2_mult(11)

    def test_gf2_emitted_gate_order_is_pinned(self):
        """The exact gate sequence is part of the determinism contract.

        The reduction-table folds dedup via dict.fromkeys (first-seen order)
        rather than set() iteration, whose order is process-dependent under
        PEP 456 string-hash randomization.  n=8 uses the pentanomial
        x^8+x^4+x^3+x+1 and n=10 exercises the reduced_mod recursion, so
        these two digests cover every construction path.
        """
        import hashlib

        expected = {
            8: "bf825550b7721c8252159d640aecc679181bcdc0064b0102e3a6c116924d295f",
            10: "fae8faf2b9a780abcdbf798aaf421b68731f7d9c4ea46f94862ca5d96d6dc348",
        }
        for n, digest in expected.items():
            circuit = gf2_mult(n)
            blob = ";".join(
                "%s:%s" % (inst.gate, ",".join(map(str, inst.qubits)))
                for inst in circuit.instructions
            )
            assert hashlib.sha256(blob.encode()).hexdigest() == digest

    def test_gf2_2_multiplication_table(self):
        """Check a*b over GF(4) with polynomial x^2 + x + 1 for a basis case."""
        circuit = gf2_mult(2)
        unitary = circuit_unitary(circuit)
        num_qubits = circuit.num_qubits
        # a = x (bits a1=1), b = x: a*b = x^2 = x + 1 -> c = 11b.
        index = (1 << (num_qubits - 1 - 1)) | (1 << (num_qubits - 1 - 3))
        out = unitary @ np.eye(1 << num_qubits)[index]
        out_index = int(np.argmax(np.abs(out)))
        bits = format(out_index, f"0{num_qubits}b")
        assert bits[4] == "1" and bits[5] == "1"
